package trace

import (
	"strings"
	"testing"

	"repro/internal/cimp"
	"repro/internal/gcmodel"
	"repro/internal/heap"
)

func model(t *testing.T) *gcmodel.Model {
	t.Helper()
	m, err := gcmodel.Build(gcmodel.Config{
		NMutators: 2,
		NRefs:     2,
		NFields:   1,
		InitObjects: map[heap.Ref][]heap.Ref{
			0: {1},
			1: {heap.NilRef},
		},
		InitRoots: []heap.RefSet{heap.SetOf(0), heap.SetOf(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProcName(t *testing.T) {
	m := model(t)
	cases := map[cimp.PID]string{
		0: "gc",
		1: "mut0",
		2: "mut1",
		3: "sys",
	}
	for pid, want := range cases {
		if got := ProcName(m, pid); got != want {
			t.Fatalf("ProcName(%d) = %q, want %q", pid, got, want)
		}
	}
}

func TestEventRendering(t *testing.T) {
	m := model(t)
	tau := cimp.Event{Proc: 0, Peer: -1, Label: "gc_flip_fM"}
	if got := Event(m, tau); got != "gc: gc_flip_fM" {
		t.Fatalf("tau event = %q", got)
	}
	rv := cimp.Event{
		Proc: 1, Peer: 3, Label: "mut0_load", PeerLabel: "sys-read",
		Alpha: gcmodel.Req{P: 1, Kind: gcmodel.RRead, Loc: gcmodel.Loc{Kind: gcmodel.LFM}},
	}
	got := Event(m, rv)
	for _, want := range []string{"mut0", "sys", "mut0_load", "read fM"} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendezvous event %q missing %q", got, want)
		}
	}
}

func TestStateRendering(t *testing.T) {
	m := model(t)
	got := State(m, m.Initial())
	for _, want := range []string{"phase=Idle", "fM=false", "heap={0:[1] 1:[-]}",
		"m0{roots={0}", "m1{roots={1}", "gcW={}"} {
		if !strings.Contains(got, want) {
			t.Fatalf("state rendering %q missing %q", got, want)
		}
	}
	// Buffers and lock appear only when non-trivial.
	if strings.Contains(got, "buf[") || strings.Contains(got, "lock=") {
		t.Fatalf("initial state shows empty buffers/lock: %q", got)
	}
}

func TestStateShowsBuffersAndLock(t *testing.T) {
	m := model(t)
	st := m.Initial().CloneShallow()
	sysIdx := len(st.Procs) - 1
	st.Procs[sysIdx] = cimp.Config[*gcmodel.Local]{
		Stack: st.Procs[sysIdx].Stack,
		Data:  st.Procs[sysIdx].Data.Clone(),
	}
	sys := st.Procs[sysIdx].Data.Sys
	sys.Bufs[0] = []gcmodel.WAct{{Loc: gcmodel.Loc{Kind: gcmodel.LFM}, Val: 1}}
	sys.Lock = 1
	got := State(m, st)
	if !strings.Contains(got, "buf[gc]=[fM←1]") {
		t.Fatalf("buffer not rendered: %q", got)
	}
	if !strings.Contains(got, "lock=mut0") {
		t.Fatalf("lock not rendered: %q", got)
	}
}
