package repro

// One benchmark per experiment in DESIGN.md's per-experiment index
// (E1–E16). The paper has no performance tables — it is a verification
// paper — so these benchmarks regenerate the cost profile of every
// artifact the paper's figures define: the semantics, the TSO machine,
// the model checker that re-establishes the theorem, and the runtime
// kernel's barrier/handshake/cycle costs that motivate the design
// choices (§2.3, §2.4). EXPERIMENTS.md records representative numbers.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/gcmodel"
	"repro/internal/gcrt"
	"repro/internal/heap"
	"repro/internal/invariant"
	"repro/internal/litmus"
	"repro/internal/liveness"
	"repro/internal/sched"
	"repro/internal/tso"
)

// --- E1 (Figure 1): grey protection over white chains -----------------

func BenchmarkE1GreyProtection(b *testing.B) {
	h := heap.New(64)
	for i := 0; i < 64; i++ {
		h.AllocAt(heap.Ref(i), 2, false)
	}
	for i := 0; i < 64; i++ {
		h.Store(heap.Ref(i), 0, heap.Ref((i+1)%64))
		h.Store(heap.Ref(i), 1, heap.Ref((i*7+3)%64))
	}
	grey := heap.SetOf(0, 17, 42)
	white := func(r heap.Ref) bool { return int(r)%3 != 0 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.ReachableVia(grey, white)
	}
}

// --- E2 (Figure 2): a full collector cycle ----------------------------

func BenchmarkE2CollectorCycle(b *testing.B) {
	for _, slots := range []int{256, 4096} {
		b.Run(sizeName(slots), func(b *testing.B) {
			rt := gcrt.New(gcrt.Options{Slots: slots, Fields: 2, Mutators: 1})
			m := rt.Mutator(0)
			// A live list occupying a quarter of the arena.
			head := m.Alloc()
			prev := head
			for i := 1; i < slots/4; i++ {
				n := m.Alloc()
				m.Store(prev, 0, n)
				prev = n
			}
			for i := m.NumRoots() - 1; i > head; i-- {
				m.Discard(i)
			}
			m.Park()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Collect()
			}
		})
	}
}

// --- E3 (Figure 3): handshake rounds vs mutator count -----------------

func BenchmarkE3HandshakeRound(b *testing.B) {
	for _, muts := range []int{1, 4, 16} {
		b.Run(sizeName(muts), func(b *testing.B) {
			rt := gcrt.New(gcrt.Options{Slots: 64, Fields: 1, Mutators: muts})
			for i := 0; i < muts; i++ {
				rt.Mutator(i).Park()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Collect() // 5+ handshake rounds per cycle
			}
			b.StopTimer()
			s := rt.Stats()
			b.ReportMetric(float64(s.HandshakeTime.Nanoseconds())/float64(s.Handshakes), "ns/handshake")
		})
	}
}

// --- E4 (Figure 4): handshake service through active safe points ------

func BenchmarkE4SafePointServe(b *testing.B) {
	rt := gcrt.New(gcrt.Options{Slots: 64, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	m.Alloc()
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.SafePoint()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Collect()
	}
	b.StopTimer()
	close(stop)
}

// --- E5 (Figure 5): the mark operation's two paths ---------------------

func BenchmarkE5MarkIdleFastPath(b *testing.B) {
	// With the collector idle, the write barriers run Figure 5 up to the
	// phase test and never attempt the CAS.
	rt := gcrt.New(gcrt.Options{Slots: 16, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	x := m.Alloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(a, 0, x)
	}
	b.StopTimer()
	if s := rt.Stats(); s.MarkCAS != 0 {
		b.Fatalf("unexpected CAS on idle fast path: %d", s.MarkCAS)
	}
}

// --- E6 (Figure 6): mutator operation throughput -----------------------

func BenchmarkE6MutatorOps(b *testing.B) {
	rt := gcrt.New(gcrt.Options{Slots: 1024, Fields: 2, Mutators: 1})
	m := rt.Mutator(0)
	a := m.Alloc()
	x := m.Alloc()
	m.Store(a, 0, x)
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Load(a, 0)
			m.Discard(m.NumRoots() - 1)
		}
	})
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Store(a, 1, x)
		}
	})
	b.Run("alloc-discard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := m.Alloc()
			if r == -1 {
				b.StopTimer()
				m.Park()
				rt.Collect()
				rt.Collect()
				m.Unpark()
				b.StartTimer()
				continue
			}
			m.Discard(r)
		}
	})
	b.Run("safepoint-idle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.SafePoint()
		}
	})
}

// --- E7 (Figures 7–8): CIMP system-step enumeration --------------------

func BenchmarkE7CIMPStep(b *testing.B) {
	m, err := gcmodel.Build(core.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	st := m.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.Successors(st, func(gcmodel.SysState, gcmodel.SysEvent) { n++ })
		if n == 0 {
			b.Fatal("no successors")
		}
	}
}

// --- E8 (Figure 9): exhaustive litmus exploration ----------------------

func BenchmarkE8TSOLitmus(b *testing.B) {
	for _, t := range []litmus.Test{litmus.SB(), litmus.MP(), litmus.IRIW()} {
		b.Run(t.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = tso.Explore(t.Prog, tso.TSO)
			}
		})
	}
}

// --- E9 (Figure 10): mark-loop model exploration -----------------------

func BenchmarkE9MarkLoopModel(b *testing.B) {
	cfg := core.ChainConfig()
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	states := 0
	for i := 0; i < b.N; i++ {
		res := explore.Run(m, nil, explore.Options{MaxStates: 20_000, HashOnly: true})
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

// --- E10 (headline theorem): model-checking throughput -----------------

func BenchmarkE10HeadlineModelCheck(b *testing.B) {
	cfg := core.TinyConfig()
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	states := 0
	for i := 0; i < b.N; i++ {
		res := explore.Run(m, invariant.All(), explore.Options{MaxStates: 20_000, HashOnly: true})
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
		states += res.States
	}
	b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
}

// --- E17: the parallel sharded checker (this repo's perf tentpole) ------
//
// BenchmarkExploreWorkers scales the layer-synchronous BFS across worker
// counts on the standard (tiny) configuration; BenchmarkExploreFingerprints
// compares retained-string fingerprints against 64-bit hash compaction at
// a fixed worker count, reporting visited-set payload bytes per state.
// EXPERIMENTS.md records representative numbers and the reproduction
// commands.

func BenchmarkExploreWorkers(b *testing.B) {
	m, err := gcmodel.Build(core.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(itoa(w)+"w", func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				res := explore.Run(m, invariant.All(),
					explore.Options{MaxStates: 50_000, Workers: w, HashOnly: true})
				if res.Violation != nil {
					b.Fatal(res.Violation)
				}
				states += res.States
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

func BenchmarkExploreFingerprints(b *testing.B) {
	m, err := gcmodel.Build(core.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		hashOnly bool
	}{{"string", false}, {"hashed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			states := 0
			var bytesPerState float64
			for i := 0; i < b.N; i++ {
				res := explore.Run(m, invariant.All(),
					explore.Options{MaxStates: 50_000, Workers: 1, HashOnly: mode.hashOnly})
				if res.Violation != nil {
					b.Fatal(res.Violation)
				}
				states += res.States
				bytesPerState = float64(res.VisitedBytes) / float64(res.States)
			}
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
			b.ReportMetric(bytesPerState, "visited-B/state")
		})
	}
}

// --- E17b: state-space reductions (POR + mutator symmetry) -------------
//
// BenchmarkExploreReduction compares exploration throughput and capped
// state counts across the reduction modes on the standard tiny
// configuration and on the symmetric two-mutator configuration (the one
// where canonicalization folds). The soundness of the modes is the
// subject of package diffcheck; EXPERIMENTS.md records the uncapped
// shrink ratios.

func BenchmarkExploreReduction(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  core.ModelConfig
	}{
		{"tiny", core.TinyConfig()},
		{"two-sym", core.SymmetricConfig()},
	} {
		m, err := gcmodel.Build(c.cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, md := range []struct {
			name             string
			reduce, symmetry bool
		}{
			{"full", false, false},
			{"reduce", true, false},
			{"reduce+symmetry", true, true},
		} {
			b.Run(c.name+"/"+md.name, func(b *testing.B) {
				states := 0
				for i := 0; i < b.N; i++ {
					res := explore.Run(m, invariant.All(), explore.Options{
						MaxStates: 50_000, HashOnly: true,
						Reduce: md.reduce, Symmetry: md.symmetry,
					})
					if res.Violation != nil {
						b.Fatal(res.Violation)
					}
					states += res.States
				}
				b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
			})
		}
	}
}

// BenchmarkLitmusReduction runs the whole published litmus battery
// through the TSO explorer with and without partial-order reduction.
func BenchmarkLitmusReduction(b *testing.B) {
	for _, md := range []struct {
		name string
		opt  tso.ExploreOptions
	}{
		{"full", tso.ExploreOptions{}},
		{"reduce", tso.ExploreOptions{Reduce: true}},
	} {
		b.Run(md.name, func(b *testing.B) {
			states := 0
			for i := 0; i < b.N; i++ {
				for _, tc := range litmus.All() {
					for _, model := range []tso.Model{tso.TSO, tso.SC} {
						states += tso.ExploreX(tc.Prog, model, md.opt).States
					}
				}
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/suite")
		})
	}
}

// --- E11: time-to-counterexample for the barrier ablations -------------

func BenchmarkE11AblationCounterexample(b *testing.B) {
	cfg := core.TinyConfig()
	cfg.NoDeletionBarrier = true
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := explore.Run(m, invariant.Safety(), explore.Options{MaxStates: 500_000, HashOnly: true})
		if res.Violation == nil {
			b.Fatal("counterexample not found")
		}
	}
}

// --- E12: handshake-elision exploration ---------------------------------

func BenchmarkE12ElideHandshake(b *testing.B) {
	cfg := core.TinyConfig()
	cfg.ElideHS2 = true
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = explore.Run(m, invariant.All(), explore.Options{MaxStates: 20_000, HashOnly: true})
	}
}

// --- E13: TSO vs SC outcome separation ----------------------------------

func BenchmarkE13TSOvsSC(b *testing.B) {
	prog := litmus.SB().Prog
	b.Run("TSO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs := tso.Explore(prog, tso.TSO)
			if len(outs) != 4 {
				b.Fatalf("TSO outcomes = %d, want 4", len(outs))
			}
		}
	})
	b.Run("SC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs := tso.Explore(prog, tso.SC)
			if len(outs) != 3 {
				b.Fatalf("SC outcomes = %d, want 3", len(outs))
			}
		}
	})
}

// --- E14 (§2.3): write-barrier cost fast path vs CAS path ---------------

func BenchmarkE14BarrierFastPath(b *testing.B) {
	// During marking, stores whose targets are already marked take the
	// flag-test-only path. Hold the collector mid-mark-loop by never
	// serving its get-work handshake from this (unparked) mutator.
	rt, m, cleanup := heldInMarkPhase(b)
	defer cleanup()
	a, x := 0, 1
	m.Store(a, 0, x) // first store CAS-marks x and a's old value
	before := rt.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(a, 0, x) // all targets marked: fast path only
	}
	b.StopTimer()
	after := rt.Stats()
	if after.MarkCAS != before.MarkCAS {
		b.Fatalf("CAS on fast path: %d", after.MarkCAS-before.MarkCAS)
	}
}

func BenchmarkE14BarrierCASPath(b *testing.B) {
	// Freshly unmarked targets force the locked CMPXCHG each time. We
	// re-whiten the object between iterations (test-only access) to
	// isolate the CAS cost.
	rt, m, cleanup := heldInMarkPhase(b)
	defer cleanup()
	a, x := 0, 1
	obj := m.Root(x)
	fM := rt.FM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Arena().WhitenForBenchmark(obj, fM)
		m.Store(a, 0, x) // insertion barrier must CAS-mark x
	}
}

// heldInMarkPhase starts a collection and drives the mutator through the
// root-marking round, leaving the collector blocked on mark-loop
// termination so that phase == Mark for the duration of the benchmark.
func heldInMarkPhase(b *testing.B) (*gcrt.Runtime, *gcrt.Mutator, func()) {
	b.Helper()
	rt := gcrt.New(gcrt.Options{Slots: 64, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	m.Alloc() // a
	m.Alloc() // x
	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()
	m.AwaitHandshakes(5)
	cleanup := func() {
		m.Park()
		<-done
		m.Unpark()
	}
	return rt, m, cleanup
}

// --- E15: floating garbage dies within two cycles -----------------------

func BenchmarkE15FloatingGarbage(b *testing.B) {
	rt := gcrt.New(gcrt.Options{Slots: 2048, Fields: 1, Mutators: 1})
	m := rt.Mutator(0)
	m.Park()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.Unpark()
		for k := 0; k < 1024; k++ {
			if r := m.Alloc(); r != -1 {
				m.Discard(r)
			}
		}
		m.Park()
		b.StartTimer()
		rt.Collect()
		rt.Collect()
		b.StopTimer()
		if live := rt.Arena().LiveCount(); live != 0 {
			b.Fatalf("floating garbage retained: %d", live)
		}
		b.StartTimer()
	}
}

// --- E16: invariant battery evaluation cost ------------------------------

func BenchmarkE16InvariantCheck(b *testing.B) {
	m, err := gcmodel.Build(core.ChainConfig())
	if err != nil {
		b.Fatal(err)
	}
	g := gcmodel.Global{Model: m, State: m.Initial()}
	checks := invariant.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := invariant.NewView(g)
		for _, c := range checks {
			if err := c.Pred(v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- random-walk simulation throughput (gcsim's engine) -----------------

func BenchmarkSimulatorWalk(b *testing.B) {
	cfg := core.AllocConfig()
	cfg.OpBudget = 0
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		res := sched.Walk(m, invariant.All(), sched.Options{Seed: int64(i + 1), Steps: 2000})
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- E2b: mutator pause, stop-the-world baseline vs on-the-fly ----------

func BenchmarkE2bMaxPause(b *testing.B) {
	run := func(b *testing.B, collect func(*gcrt.Runtime) int) {
		var worst int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rt := gcrt.New(gcrt.Options{Slots: 8192, Fields: 1, Mutators: 1})
			m := rt.Mutator(0)
			head := m.Alloc()
			prev := head
			for k := 1; k < 4096; k++ {
				n := m.Alloc()
				m.Store(prev, 0, n)
				prev = n
			}
			for k := m.NumRoots() - 1; k > head; k-- {
				m.Discard(k)
			}
			done := make(chan struct{})
			b.StartTimer()
			go func() { collect(rt); close(done) }()
		spin:
			for {
				select {
				case <-done:
					break spin
				default:
					m.SafePoint()
				}
			}
			b.StopTimer()
			if p := int64(m.MaxPause()); p > worst {
				worst = p
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(worst), "worst-pause-ns")
	}
	b.Run("stop-the-world", func(b *testing.B) {
		run(b, func(rt *gcrt.Runtime) int { return rt.CollectSTW() })
	})
	b.Run("on-the-fly", func(b *testing.B) {
		run(b, func(rt *gcrt.Runtime) int { return rt.Collect() })
	})
}

// --- E2c: rescanning variant round inflation -----------------------------

func BenchmarkE2cRescanRounds(b *testing.B) {
	// Quiesced comparison: with parked mutators both variants trace the
	// same heap; the rescanning variant still pays one extra (empty)
	// roots round per cycle, and under adversarial mutators its rounds
	// grow with the hidden chain (see TestRescanUnboundedRounds).
	b.Run("snapshot", func(b *testing.B) {
		rt := gcrt.New(gcrt.Options{Slots: 512, Fields: 1, Mutators: 1})
		seedList(rt, 256)
		rt.Mutator(0).Park()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Collect()
		}
	})
	b.Run("rescan", func(b *testing.B) {
		rt := gcrt.New(gcrt.Options{Slots: 512, Fields: 1, Mutators: 1, NoDeletionBarrier: true})
		seedList(rt, 256)
		rt.Mutator(0).Park()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.CollectRescan()
		}
		b.StopTimer()
		b.ReportMetric(float64(rt.RescanRounds())/float64(b.N), "rounds/cycle")
	})
}

func seedList(rt *gcrt.Runtime, n int) {
	m := rt.Mutator(0)
	head := m.Alloc()
	prev := head
	for i := 1; i < n; i++ {
		x := m.Alloc()
		m.Store(prev, 0, x)
		prev = x
	}
	for i := m.NumRoots() - 1; i > head; i-- {
		m.Discard(i)
	}
}

// --- E18: liveness — fair-cycle search over the state graph -----------

// BenchmarkE18Liveness measures the full progress check (graph build
// over the unreduced relation plus one SCC pass per property) on a
// small stores-only configuration; EXPERIMENTS.md records the uncapped
// preset costs.
func BenchmarkE18Liveness(b *testing.B) {
	cfg := core.TinyConfig()
	cfg.OpBudget = 1
	cfg.MaxBuf = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	m, err := gcmodel.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := liveness.Check(m, liveness.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds() {
			b.Fatal("clean model violated a progress property")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}
