// Package repro is a full reproduction, in Go, of "Relaxing Safely:
// Verified On-the-fly Garbage Collection for x86-TSO" (Gammie, Hosking,
// Engelhardt; PLDI 2015).
//
// The paper machine-checks safety for an on-the-fly, concurrent
// mark-sweep collector over the x86-TSO relaxed memory model. This
// repository rebuilds every system the paper describes as executable
// code and re-establishes its results by exhaustive bounded model
// checking, randomized simulation, and a runnable collector kernel:
//
//   - internal/cimp: the CIMP language and its two operational semantics
//     (paper Figures 7–8);
//   - internal/tso: the x86-TSO abstract machine and a litmus explorer
//     (Figure 9, §2.4);
//   - internal/heap: the abstract heap and tricolor machinery (§2.1);
//   - internal/gcmodel: the collector, mutators, handshakes and system
//     process as CIMP programs (Figures 2–6, 10);
//   - internal/invariant: the proof's invariants as executable
//     predicates (§3.2);
//   - internal/explore, internal/sched: the explicit-state model checker
//     and random-walk simulator;
//   - internal/liveness: progress properties and weakly fair cycle
//     detection over the model's state graph;
//   - internal/analysis: the static effect/robustness analyzer (declared
//     effect footprints, CFG dataflow, Shasha–Snir robustness, placement
//     rules, POR safe-class derivation), cross-checked against the
//     dynamic checker; cmd/gclint is its CLI;
//   - internal/analysis/golint, internal/analysis/gortlint: the
//     self-lint layer — a stdlib-only module loader and call graph, and
//     the runtime conformance passes (field-access discipline,
//     write-barrier coverage, publication discipline, benchmark-hook
//     confinement) that check internal/gcrt and internal/server against
//     their declared concurrency tables (gclint -gosrc);
//   - internal/gcrt: the executable Schism-style collector kernel with
//     real goroutine mutators;
//   - internal/core: the library façade.
//
// The root-level benchmarks (bench_test.go) regenerate each experiment
// of DESIGN.md's per-experiment index; EXPERIMENTS.md records the
// results.
package repro
