// litmus runs the x86-TSO litmus catalogue exhaustively under both the
// TSO machine and the sequential-consistency oracle and prints a verdict
// table (experiments E8 and E13).
//
// Usage:
//
//	litmus [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/litmus"
	"repro/internal/tso"
)

func main() {
	verbose := flag.Bool("v", false, "print every terminal outcome of every test")
	version := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	fmt.Printf("%-14s %-10s %-10s %-9s %-9s %s\n",
		"test", "TSO", "SC", "outcomes", "witness", "description")
	bad := 0
	for _, t := range litmus.All() {
		vt := litmus.Run(t, tso.TSO)
		vs := litmus.Run(t, tso.SC)
		status := func(v litmus.Verdict) string {
			s := "forbidden"
			if v.Observed {
				s = "OBSERVED"
			}
			if !v.OK() {
				s += "(!)"
				bad++
			}
			return s
		}
		fmt.Printf("%-14s %-10s %-10s %4d/%-4d %4d/%-4d %s\n",
			t.Name, status(vt), status(vs),
			vt.Outcomes, vs.Outcomes, vt.Witnesses, vs.Witnesses,
			t.Description)
		if *verbose {
			for _, k := range tso.OutcomeKeys(tso.Explore(t.Prog, tso.TSO)) {
				fmt.Printf("    TSO  %s\n", k)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "litmus: %d verdicts diverge from the published x86-TSO expectations\n", bad)
		os.Exit(1)
	}
	fmt.Println("all verdicts match the published x86-TSO expectations")
}
