// gcsim drives long seeded random walks through the collector model with
// the full invariant battery attached — depth and scale where gcmc gives
// exhaustiveness.
//
// SIGINT/SIGTERM interrupt the run gracefully: the current walk stops at
// the next step boundary, the per-seed and total summaries still print
// (marked INCOMPLETE), and the process exits 130 — so a partial
// overnight run still reports what it covered.
//
// Usage:
//
//	gcsim -steps 200000 -seeds 16 -preset alloc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/buildinfo"
	"repro/internal/core"
)

func main() {
	var (
		preset  = flag.String("preset", "alloc", "configuration preset: "+strings.Join(core.PresetNames(), ", "))
		steps   = flag.Int("steps", 100_000, "steps per walk")
		seeds   = flag.Int("seeds", 8, "number of independent walks")
		first   = flag.Int64("seed", 1, "first seed")
		every   = flag.Int("check-every", 1, "check invariants every k-th step")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	cfg, err := core.PresetConfig(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		os.Exit(2)
	}
	// Random walks need no bounded-context reduction.
	cfg.OpBudget = 0

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "gcsim: caught %v — stopping at the next step (repeat to kill)\n", sig)
		cancel()
		signal.Stop(sigc)
	}()

	// Run every requested walk even after a violation — the remaining
	// seeds may expose distinct failures — then exit nonzero if any walk
	// violated, so CI can gate on the exit status.
	totalSteps, totalCycles, violations := 0, 0, 0
	walks, interrupted := 0, false
	for i := 0; i < *seeds && !interrupted; i++ {
		seed := *first + int64(i)
		res, err := core.Simulate(cfg, core.SimulateOptions{
			Seed: seed, Steps: *steps, CheckEvery: *every, Context: ctx,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcsim:", err)
			os.Exit(2)
		}
		walks++
		totalSteps += res.Steps
		totalCycles += res.Cycles
		interrupted = res.Interrupted
		if res.Violation != nil {
			violations++
			fmt.Printf("seed %4d: VIOLATION %v\n", seed, res.Violation)
			continue
		}
		if res.Interrupted {
			fmt.Printf("seed %4d: interrupted after %d steps, %d collector cycles — no violation so far\n",
				seed, res.Steps, res.Cycles)
			continue
		}
		fmt.Printf("seed %4d: %d steps, %d collector cycles, all invariants held\n",
			seed, res.Steps, res.Cycles)
	}
	if violations > 0 {
		fmt.Printf("TOTAL: %d steps, %d cycles across %d walks — %d VIOLATED\n",
			totalSteps, totalCycles, walks, violations)
		os.Exit(1)
	}
	if interrupted {
		fmt.Printf("TOTAL: %d steps, %d cycles across %d walks — INCOMPLETE (interrupted): no violation found in the walked portion\n",
			totalSteps, totalCycles, walks)
		os.Exit(130)
	}
	fmt.Printf("TOTAL: %d steps, %d cycles across %d walks — no violations\n",
		totalSteps, totalCycles, walks)
}
