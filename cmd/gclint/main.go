// gclint statically analyzes the collector model and the litmus
// catalogue without model-checking anything. It has three modes:
//
//   - -preset/-ablation flags: extract the effect footprint of one model
//     configuration, build the per-process control-flow graphs, and
//     evaluate the placement rules (deletion-barrier, insertion-barrier,
//     mark-cas, handshake-fence, phase-ladder). Exit status 1 iff a rule
//     fired — so a barrier-, lock-, or fence-ablated configuration is
//     rejected in milliseconds, before any exploration.
//
//   - -litmus: run the Shasha–Snir TSO-robustness analysis on every
//     litmus program and report which store→load pairs lie on critical
//     cycles. With -dyn, each verdict is cross-checked against the
//     dynamic ground truth (TSO vs SC outcome-set equality under
//     tso.Explore).
//
//   - -all: the CI gate. Lints every shipped preset (expecting no
//     findings) and the full litmus catalogue with the dynamic
//     cross-check (expecting static soundness: every program whose TSO
//     outcomes exceed SC is flagged). Exit status 1 on any surprise.
//
//   - -gosrc: lint the checker's and runtime's own Go source instead
//     of the model. The fingerprint call graph of internal/gcmodel must
//     contain no map iteration (order is randomized, so one would make
//     verdicts nondeterministic); every goroutine spawned in
//     internal/explore, internal/liveness, internal/server and
//     internal/gcrt must install a deferred recover guard; and the
//     gortlint conformance passes run over the concrete collector
//     (field-access discipline, write-barrier coverage, publication
//     discipline, benchmark-hook confinement) and the verification
//     service (discipline again — the analyzer is generic over the
//     table). Exit status 1 on any finding; -json emits the
//     gclint.gosrc/v1 report.
//
//   - -gosrc-fixtures: run every gortlint pass against its seeded-
//     defect fixture tree instead of the real one. Each fixture must
//     produce at least its expected number of findings — the smoke that
//     proves the zero-findings gate still has teeth. Exit status 1 when
//     every fixture fires (findings present = healthy, matching the
//     ablation smokes); 0 signals a detection regression.
//
// SIGINT/SIGTERM interrupt -all and -litmus gracefully between items:
// the partial report prints, marked INCOMPLETE, and the process exits
// 130 — an interrupted gate is never mistaken for a clean one.
//
// Usage:
//
//	gclint [flags]
//
// Examples:
//
//	gclint -preset tiny                    # lint the default model: clean
//	gclint -preset tiny -no-hs-fence       # rule handshake-fence fires, exit 1
//	gclint -preset tiny -relaxed           # also show relaxed pairs + fence coverage
//	gclint -litmus -dyn                    # static verdicts vs dynamic ground truth
//	gclint -all                            # full static gate (CI entry point)
//	gclint -gosrc                          # lint the checker's own source
//	gclint -preset tiny -json              # machine-readable report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/analysis"
	"repro/internal/analysis/golint"
	"repro/internal/analysis/gortlint"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/tso"
	"repro/internal/verdict"
)

func main() {
	var (
		preset  = flag.String("preset", "tiny", "model preset to lint: "+strings.Join(core.PresetNames(), ", "))
		relaxed = flag.Bool("relaxed", false, "also print the informational relaxed store→load pairs and per-fence coverage")

		noDel     = flag.Bool("no-deletion-barrier", false, "ablate the deletion barrier")
		noIns     = flag.Bool("no-insertion-barrier", false, "ablate the insertion barrier")
		insGate   = flag.Bool("insertion-barrier-gated", false, "drop the insertion barrier after root marking")
		unlockedM = flag.Bool("unlocked-mark", false, "ablate the TSO lock around the mark CAS")
		noHSFence = flag.Bool("no-hs-fence", false, "ablate the mfences around handshake signalling")
		scMem     = flag.Bool("sc", false, "sequential-consistency memory oracle instead of TSO")
		elide1    = flag.Bool("elide-hs1", false, "skip handshake round 1")
		elide2    = flag.Bool("elide-hs2", false, "skip handshake round 2")
		elide3    = flag.Bool("elide-hs3", false, "skip handshake round 3")
		elide4    = flag.Bool("elide-hs4", false, "skip handshake round 4")

		litmusMode = flag.Bool("litmus", false, "analyze the litmus catalogue instead of a model configuration")
		dyn        = flag.Bool("dyn", false, "litmus: cross-check each static verdict against TSO/SC exploration")
		all        = flag.Bool("all", false, "CI gate: lint every preset and the litmus catalogue with -dyn")
		gosrc      = flag.Bool("gosrc", false, "lint the checker's and runtime's own Go source: fingerprint map order, recover guards, and the gortlint conformance passes")
		gosrcFix   = flag.Bool("gosrc-fixtures", false, "run the gortlint passes against their seeded-defect fixtures (exit 1 = every defect still caught)")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON on stdout")
		version    = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "gclint: caught %v — stopping after the current item (repeat to kill)\n", sig)
		cancel()
		signal.Stop(sigc)
	}()

	switch {
	case *gosrcFix:
		os.Exit(runGoSrcFixtures())
	case *gosrc:
		os.Exit(runGoSrc(*jsonOut))
	case *all:
		os.Exit(runAll(ctx, *jsonOut))
	case *litmusMode:
		os.Exit(runLitmus(ctx, *dyn, *jsonOut))
	}

	cfg, err := core.PresetConfig(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		os.Exit(2)
	}
	cfg.NoDeletionBarrier = *noDel
	cfg.NoInsertionBarrier = *noIns
	cfg.InsertionBarrierOnlyBeforeRootsDone = *insGate
	cfg.UnlockedMark = *unlockedM
	cfg.NoHSFence = *noHSFence
	cfg.SCMemory = *scMem
	cfg.ElideHS1 = *elide1
	cfg.ElideHS2 = *elide2
	cfg.ElideHS3 = *elide3
	cfg.ElideHS4 = *elide4

	rep, err := analysis.LintModel(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		emit(verdict.FromModelReport(*preset, rep, *relaxed))
	} else {
		printModel(*preset, rep, *relaxed)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

func printModel(preset string, rep *analysis.ModelReport, relaxed bool) {
	if rep.Clean() {
		fmt.Printf("%s: clean (no placement rule fired)\n", preset)
	} else {
		fmt.Printf("%s: %d finding(s)\n", preset, len(rep.Findings))
		for _, f := range rep.Findings {
			fmt.Printf("  %s\n", f)
		}
	}
	if relaxed {
		fmt.Printf("relaxed store→load pairs (informational — the model tolerates these): %d\n", len(rep.Relaxed))
		for _, p := range rep.Relaxed {
			fmt.Printf("  p%d: %s → %s\n", p.PID, p.Store, p.Load)
		}
		for _, c := range rep.FenceCoverage {
			fmt.Printf("fence p%d %s suppresses %d pair(s)\n", c.PID, c.Label, c.Covers)
		}
	}
}

// interrupted reports whether ctx has been cancelled (by the signal
// handler).
func interrupted(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// runLitmus analyzes the catalogue; with dyn it cross-checks against
// exploration. Returns the exit status: 1 iff a static verdict is
// unsound (a dynamically non-robust program not flagged), 130 if
// interrupted before the catalogue was exhausted.
func runLitmus(ctx context.Context, dyn, jsonOut bool) int {
	status := 0
	var out []verdict.LitmusLint
	for _, tc := range litmus.All() {
		if interrupted(ctx) {
			fmt.Fprintln(os.Stderr, "gclint: INCOMPLETE (interrupted): litmus catalogue not exhausted")
			return 130
		}
		rep := analysis.AnalyzeTSOProgram(tc.Prog)
		var dynVerdict *bool
		note := ""
		if dyn {
			d := robustDynamic(tc.Prog)
			dynVerdict = &d
			switch {
			case !d && rep.Robust:
				note = "  UNSOUND: TSO outcomes exceed SC but not flagged"
				status = 1
			case d && !rep.Robust:
				note = "  (conservative: outcome sets coincide)"
			}
		}
		out = append(out, verdict.FromTSOReport(tc.Name, rep, dynVerdict))
		if !jsonOut {
			v := "robust"
			if !rep.Robust {
				v = fmt.Sprintf("NOT TSO-robust: %v", rep.Critical)
			}
			fmt.Printf("%-22s %s%s\n", tc.Name, v, note)
		}
	}
	if jsonOut {
		emit(out)
	}
	return status
}

// runAll is the CI gate: every shipped preset must lint clean and every
// litmus verdict must be dynamically sound. An interruption stops
// between items and exits 130 — a partial gate never reads as clean.
func runAll(ctx context.Context, jsonOut bool) int {
	status := 0
	for _, name := range core.PresetNames() {
		if interrupted(ctx) {
			fmt.Fprintln(os.Stderr, "gclint: INCOMPLETE (interrupted): preset sweep not exhausted")
			return 130
		}
		cfg, err := core.PresetConfig(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %s: %v\n", name, err)
			return 2
		}
		rep, err := analysis.LintModel(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %s: %v\n", name, err)
			return 2
		}
		if !rep.Clean() {
			status = 1
		}
		if !jsonOut {
			printModel(name, rep, false)
		}
	}
	if s := runLitmus(ctx, true, jsonOut); s != 0 {
		status = s
	}
	return status
}

// runGoSrc lints the checker's and runtime's own Go source: the
// fingerprint call graph must be map-iteration free, every
// verification-worker spawn must carry a recover guard, and the
// gortlint conformance passes must find the concrete collector and the
// verification service clean. Directories are resolved against the
// enclosing module root, so the gate works from any working directory
// inside the repository. With jsonOut the gclint.gosrc/v1 report is
// emitted on stdout.
func runGoSrc(jsonOut bool) int {
	root, err := golint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		return 2
	}
	status := 0
	rep := verdict.GoSrcLint{Schema: verdict.GoSrcSchema, Clean: true}
	report := func(pass, dir string, diags []golint.Diagnostic, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: %s: %v\n", pass, err)
			status = 2
			return
		}
		p := verdict.GoSrcPass{Pass: pass, Dir: dir, Clean: len(diags) == 0}
		for _, d := range diags {
			p.Findings = append(p.Findings, verdict.GoSrcFinding{
				Pos:     relPos(root, d.Pos),
				Func:    d.Func,
				Message: d.Message,
			})
		}
		rep.Passes = append(rep.Passes, p)
		if !p.Clean {
			rep.Clean = false
			if status == 0 {
				status = 1
			}
		}
		if jsonOut {
			return
		}
		if p.Clean {
			fmt.Printf("%s: %s: clean\n", pass, dir)
			return
		}
		for _, f := range p.Findings {
			fmt.Printf("%s: %s: %s: %s\n", pass, f.Pos, f.Func, f.Message)
		}
	}

	fpDir := filepath.Join(root, "internal", "gcmodel")
	diags, err := golint.CheckDir(fpDir, []string{"AppendFingerprint", "AppendCanonicalFingerprint"})
	report("fingerprint-map-order", "internal/gcmodel", diags, err)

	for _, rel := range []string{
		"internal/explore",
		"internal/liveness",
		"internal/server",
		"internal/gcrt",
	} {
		diags, err := golint.CheckGoRecover(filepath.Join(root, filepath.FromSlash(rel)))
		report("goroutine-recover-guard", rel, diags, err)
	}

	// The gortlint conformance passes share one loaded module per tree.
	gcrtDirs := make([]string, 0, len(gortlint.GCRTDirs()))
	for _, rel := range gortlint.GCRTDirs() {
		gcrtDirs = append(gcrtDirs, filepath.Join(root, filepath.FromSlash(rel)))
	}
	if mod, merr := golint.LoadPackages(gcrtDirs...); merr != nil {
		fmt.Fprintln(os.Stderr, "gclint: load internal/gcrt:", merr)
		status = 2
	} else {
		d, e := gortlint.CheckDiscipline(mod, gortlint.GCRTDiscipline())
		report("gcrt-discipline", "internal/gcrt", d, e)
		d, e = gortlint.CheckBarriers(mod, gortlint.GCRTBarriers())
		report("gcrt-barriers", "internal/gcrt", d, e)
		d, e = gortlint.CheckPublish(mod, gortlint.GCRTPublish())
		report("gcrt-publication", "internal/gcrt", d, e)
		d, e = gortlint.CheckHooks(mod, gortlint.GCRTHooks())
		report("gcrt-bench-hooks", "internal/gcrt", d, e)
	}

	serverDirs := make([]string, 0, len(gortlint.ServerDirs()))
	for _, rel := range gortlint.ServerDirs() {
		serverDirs = append(serverDirs, filepath.Join(root, filepath.FromSlash(rel)))
	}
	if mod, merr := golint.LoadPackages(serverDirs...); merr != nil {
		fmt.Fprintln(os.Stderr, "gclint: load internal/server:", merr)
		status = 2
	} else {
		d, e := gortlint.CheckDiscipline(mod, gortlint.ServerDiscipline())
		report("server-discipline", "internal/server", d, e)
	}

	storageDirs := make([]string, 0, len(gortlint.StorageDirs()))
	for _, rel := range gortlint.StorageDirs() {
		storageDirs = append(storageDirs, filepath.Join(root, filepath.FromSlash(rel)))
	}
	if mod, merr := golint.LoadPackages(storageDirs...); merr != nil {
		fmt.Fprintln(os.Stderr, "gclint: load internal/storage:", merr)
		status = 2
	} else {
		d, e := gortlint.CheckDiscipline(mod, gortlint.StorageDiscipline())
		report("storage-discipline", "internal/storage", d, e)
		d, e = gortlint.CheckDiscipline(mod, gortlint.ExploreSpillDiscipline())
		report("explore-spill-discipline", "internal/explore", d, e)
	}

	if jsonOut {
		emit(rep)
	}
	return status
}

// runGoSrcFixtures runs every gortlint pass against its seeded-defect
// fixture tree. A healthy analyzer fires on every fixture, so — like
// the ablation smokes — the expected exit status is 1; a fixture that
// produces fewer findings than its floor is a detection regression and
// drops the status back to 0 (with a diagnostic on stderr).
func runGoSrcFixtures() int {
	root, err := golint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		return 2
	}
	healthy := true
	for _, spec := range gortlint.Fixtures() {
		dirs := make([]string, 0, len(spec.Dirs))
		for _, rel := range spec.Dirs {
			dirs = append(dirs, filepath.Join(root, filepath.FromSlash(rel)))
		}
		mod, err := golint.LoadPackages(dirs...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: fixture %s: %v\n", spec.Name, err)
			return 2
		}
		diags, err := spec.Run(mod)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gclint: fixture %s: %v\n", spec.Name, err)
			return 2
		}
		fmt.Printf("fixture %s: %d finding(s), expected >= %d\n", spec.Name, len(diags), spec.Min)
		if len(diags) < spec.Min {
			fmt.Fprintf(os.Stderr, "gclint: fixture %s: REGRESSION: seeded defects no longer caught\n", spec.Name)
			healthy = false
		}
	}
	if healthy {
		return 1
	}
	return 0
}

// relPos renders a diagnostic position relative to the module root, so
// reports are stable across checkouts.
func relPos(root string, pos token.Position) string {
	if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		return fmt.Sprintf("%s:%d:%d", filepath.ToSlash(rel), pos.Line, pos.Column)
	}
	return pos.String()
}

func robustDynamic(p tso.Program) bool {
	a, b := tso.Explore(p, tso.TSO), tso.Explore(p, tso.SC)
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		os.Exit(2)
	}
}
