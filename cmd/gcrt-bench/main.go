// gcrt-bench measures the runtime kernel and writes BENCH_gcrt.json:
// allocation throughput (TLAB vs. the seed's shared free-list path),
// handshake latency (p50/p99), and collection-cycle time, each across a
// range of mutator counts. EXPERIMENTS.md E21 tracks the numbers; CI
// uploads the file as an artifact.
//
// Usage:
//
//	gcrt-bench -out BENCH_gcrt.json -rounds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"repro/internal/buildinfo"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gcrt"
)

// allocResult is one allocation-throughput measurement: every mutator
// drains a fresh arena as fast as it can; ops/sec is total allocations
// over wall time, best of -rounds.
type allocResult struct {
	Mutators     int     `json:"mutators"`
	TLABOpsSec   float64 `json:"tlab_ops_per_sec"`
	LegacyOpsSec float64 `json:"legacy_ops_per_sec"`
	Speedup      float64 `json:"speedup"`
}

// cycleResult is one collection-pressure measurement: mutators churn a
// live graph at safe-point cadence while full cycles run.
type cycleResult struct {
	Mutators       int     `json:"mutators"`
	Cycles         int64   `json:"cycles"`
	HandshakeP50Ns int64   `json:"handshake_p50_ns"`
	HandshakeP99Ns int64   `json:"handshake_p99_ns"`
	CycleMsAvg     float64 `json:"cycle_ms_avg"`
	AllocOpsSec    float64 `json:"alloc_ops_per_sec"`
}

type report struct {
	Bench      string        `json:"bench"`
	Date       string        `json:"date"`
	GoMaxProcs int           `json:"gomaxprocs"`
	SlotsPerM  int           `json:"slots_per_mutator"`
	Alloc      []allocResult `json:"alloc_throughput"`
	Cycle      []cycleResult `json:"collection"`
}

// drainArena times how long mutators take to allocate every slot of a
// fresh arena and returns allocations per second.
func drainArena(nmut, perMut int, legacy bool) float64 {
	rt := gcrt.New(gcrt.Options{
		Slots: nmut * perMut, Fields: 1, Mutators: nmut,
		LegacyAlloc: legacy,
	})
	var wg sync.WaitGroup
	var total atomic.Int64
	start := time.Now()
	for i := 0; i < nmut; i++ {
		m := rt.Mutator(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for m.Alloc() >= 0 {
				n++
				if n%1024 == 0 {
					runtime.Gosched() // share the P on small GOMAXPROCS
				}
			}
			total.Add(int64(n))
		}()
	}
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

func bestOf(rounds int, f func() float64) float64 {
	best := 0.0
	for r := 0; r < rounds; r++ {
		if v := f(); v > best {
			best = v
		}
	}
	return best
}

// churnCycles runs full collections against churning mutators and
// reports handshake/cycle latency from the runtime's own histograms.
func churnCycles(nmut, perMut, cycles int) cycleResult {
	rt := gcrt.New(gcrt.Options{Slots: nmut * perMut, Fields: 2, Mutators: nmut})
	var stop atomic.Bool
	var wg sync.WaitGroup
	var allocs atomic.Int64
	start := time.Now()
	for i := 0; i < nmut; i++ {
		m := rt.Mutator(i)
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := 0
			for !stop.Load() {
				nr := m.NumRoots()
				switch {
				case nr < 4:
					if m.Alloc() >= 0 {
						n++
					}
				case nr > 32:
					m.Discard(rng.Intn(nr))
				default:
					switch rng.Intn(4) {
					case 0:
						if m.Alloc() >= 0 {
							n++
						}
					case 1:
						m.Load(rng.Intn(nr), rng.Intn(2))
					case 2:
						dst := rng.Intn(nr)
						if rng.Intn(4) == 0 {
							dst = -1
						}
						m.Store(rng.Intn(nr), rng.Intn(2), dst)
					default:
						m.Discard(rng.Intn(nr))
					}
				}
				m.SafePoint()
				runtime.Gosched()
			}
			m.Park()
			allocs.Add(int64(n))
		}(int64(i) + 1)
	}
	for c := 0; c < cycles; c++ {
		rt.Collect()
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	s := rt.Stats()
	return cycleResult{
		Mutators:       nmut,
		Cycles:         s.Cycles,
		HandshakeP50Ns: s.HandshakeP50.Nanoseconds(),
		HandshakeP99Ns: s.HandshakeP99.Nanoseconds(),
		CycleMsAvg:     s.CycleTime.Seconds() * 1e3 / float64(s.Cycles),
		AllocOpsSec:    float64(allocs.Load()) / elapsed.Seconds(),
	}
}

func main() {
	var (
		out     = flag.String("out", "BENCH_gcrt.json", "output file")
		rounds  = flag.Int("rounds", 3, "rounds per allocation measurement (best kept)")
		perMut  = flag.Int("slots-per-mutator", 4096, "arena slots per mutator")
		cycles  = flag.Int("cycles", 20, "collection cycles per pressure measurement")
		version = flag.Bool("version", false, "print build identity and exit")
		mutList = []int{1, 4, 8, 16}
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	rep := report{
		Bench:      "gcrt",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SlotsPerM:  *perMut,
	}

	for _, nmut := range mutList {
		tlab := bestOf(*rounds, func() float64 { return drainArena(nmut, *perMut, false) })
		legacy := bestOf(*rounds, func() float64 { return drainArena(nmut, *perMut, true) })
		r := allocResult{
			Mutators:     nmut,
			TLABOpsSec:   tlab,
			LegacyOpsSec: legacy,
			Speedup:      tlab / legacy,
		}
		rep.Alloc = append(rep.Alloc, r)
		fmt.Printf("alloc m=%-2d tlab=%.2fM/s legacy=%.2fM/s speedup=%.2fx\n",
			nmut, tlab/1e6, legacy/1e6, r.Speedup)
	}

	for _, nmut := range mutList {
		r := churnCycles(nmut, *perMut, *cycles)
		rep.Cycle = append(rep.Cycle, r)
		fmt.Printf("cycle m=%-2d hsP50=%s hsP99=%s cycle=%.2fms alloc=%.2fM/s\n",
			nmut, time.Duration(r.HandshakeP50Ns), time.Duration(r.HandshakeP99Ns),
			r.CycleMsAvg, r.AllocOpsSec/1e6)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcrt-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "gcrt-bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("wrote", *out)
}
