// gcmc-bench measures model-checking throughput across the corpus
// matrix and writes BENCH_gcmc.json: states/sec, wall time, and peak
// heap for each preset x ablation x {TSO,SC} cell, every cell capped at
// -max-states so the sweep stays tractable. EXPERIMENTS.md E22 tracks
// the numbers; CI uploads the file as an artifact.
//
// Usage:
//
//	gcmc-bench -out BENCH_gcmc.json -presets tiny -max-states 50000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
)

// benchAblations is the ablation axis of the benchmark matrix — the
// same headline deletions the service's corpus mode enumerates.
var benchAblations = []core.Ablations{
	{},
	{NoDeletionBarrier: true},
	{NoInsertionBarrier: true},
	{AllocWhite: true},
	{UnlockedMark: true},
	{NoHSFence: true},
}

// cellResult is one corpus-cell measurement.
type cellResult struct {
	Preset        string  `json:"preset"`
	Ablations     string  `json:"ablations"` // "" = clean configuration
	Memory        string  `json:"memory"`    // tso | sc
	Verdict       string  `json:"verdict"`
	States        int     `json:"states"`
	Transitions   int     `json:"transitions"`
	Depth         int     `json:"depth"`
	WallSec       float64 `json:"wall_sec"`
	StatesPerSec  float64 `json:"states_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
}

type report struct {
	Bench      string       `json:"bench"`
	Date       string       `json:"date"`
	Build      string       `json:"build"`
	GoMaxProcs int          `json:"gomaxprocs"`
	MaxStates  int          `json:"max_states"`
	Cells      []cellResult `json:"cells"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_gcmc.json", "output file")
		presets   = flag.String("presets", "tiny", "comma-separated presets to sweep")
		maxStates = flag.Int("max-states", 50000, "per-cell state cap")
		version   = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	rep := report{
		Bench:      "gcmc",
		Date:       time.Now().UTC().Format("2006-01-02"),
		Build:      buildinfo.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		MaxStates:  *maxStates,
	}

	for _, preset := range strings.Split(*presets, ",") {
		preset = strings.TrimSpace(preset)
		if _, err := core.PresetConfig(preset); err != nil {
			fmt.Fprintln(os.Stderr, "gcmc-bench:", err)
			os.Exit(2)
		}
		for _, abl := range benchAblations {
			for _, mem := range []string{"tso", "sc"} {
				a := abl
				a.SCMemory = mem == "sc"
				spec := core.JobSpec{
					Preset:    preset,
					Ablations: a,
					Options:   core.JobOptions{MaxStates: *maxStates},
				}
				// Peak heap is sampled at every progress report; the
				// cadence is tight enough that the BFS frontier peak —
				// the number that matters — is captured.
				var peak uint64
				res, _, err := core.RunJob(spec, core.JobRun{
					Progress: func(core.Progress) {
						var ms runtime.MemStats
						runtime.ReadMemStats(&ms)
						if ms.HeapAlloc > peak {
							peak = ms.HeapAlloc
						}
					},
					ProgressEvery: 4096,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "gcmc-bench:", err)
					os.Exit(2)
				}
				cell := cellResult{
					Preset:        preset,
					Ablations:     abl.String(),
					Memory:        mem,
					Verdict:       res.Status(),
					States:        res.States,
					Transitions:   res.Transitions,
					Depth:         res.Depth,
					WallSec:       res.Elapsed.Seconds(),
					StatesPerSec:  float64(res.States) / res.Elapsed.Seconds(),
					PeakHeapBytes: peak,
				}
				rep.Cells = append(rep.Cells, cell)
				fmt.Printf("%-6s %-22s %-3s %-18s %8d states %8.0f st/s %6.2fs %5.1f MiB\n",
					preset, labelOrClean(abl), mem, cell.Verdict, cell.States,
					cell.StatesPerSec, cell.WallSec, float64(peak)/(1<<20))
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcmc-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "gcmc-bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Println("wrote", *out)
}

func labelOrClean(a core.Ablations) string {
	if s := a.String(); s != "" {
		return s
	}
	return "clean"
}
