// gcmc model-checks the collector model: it explores every reachable
// state of a bounded configuration of GC ∥ M1 ∥ … ∥ Mn ∥ Sys over
// x86-TSO and checks the paper's safety invariants at each one,
// printing a counterexample trace on violation.
//
// Usage:
//
//	gcmc [flags]
//
// Examples:
//
//	gcmc -preset tiny                     # verify the headline theorem
//	gcmc -preset tiny -no-deletion-barrier  # reproduce the lost-object bug
//	gcmc -mutators 2 -refs 2 -budget 1    # custom configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/heap"
)

func main() {
	var (
		preset   = flag.String("preset", "tiny", "configuration preset: tiny, alloc, two-mutator, two-mutator-loads, two-sym, chain, custom")
		mutators = flag.Int("mutators", 1, "custom: number of mutators")
		refs     = flag.Int("refs", 2, "custom: reference universe size")
		fields   = flag.Int("fields", 1, "custom: fields per object")
		budget   = flag.Int("budget", 2, "custom: per-cycle mutator operation budget (0 = unbounded)")
		maxBuf   = flag.Int("maxbuf", 2, "custom: store-buffer bound (0 = unbounded)")

		noDel      = flag.Bool("no-deletion-barrier", false, "ablate the deletion barrier (E11)")
		noIns      = flag.Bool("no-insertion-barrier", false, "ablate the insertion barrier (E11)")
		insGate    = flag.Bool("insertion-barrier-gated", false, "drop the insertion barrier after root marking (§4 observation, E12b)")
		scMem      = flag.Bool("sc", false, "sequential-consistency memory oracle instead of TSO (E13)")
		allocWhite = flag.Bool("alloc-white", false, "allocate with the unmarked sense (E11)")
		elide1     = flag.Bool("elide-hs1", false, "skip handshake round 1 (E12)")
		elide2     = flag.Bool("elide-hs2", false, "skip handshake round 2 (E12)")
		elide3     = flag.Bool("elide-hs3", false, "skip handshake round 3 (E12)")
		elide4     = flag.Bool("elide-hs4", false, "skip handshake round 4 (E12)")

		maxStates = flag.Int("max-states", 0, "cap on distinct states (0 = none)")
		headline  = flag.Bool("headline-only", false, "check only valid_refs_inv")
		quiet     = flag.Bool("q", false, "suppress progress output")

		workers  = flag.Int("workers", 0, "checker worker goroutines per BFS layer (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "visited-set lock stripes (0 = checker default)")
		audit    = flag.Bool("audit", false, "retain full fingerprints and audit 64-bit hash collisions (costs memory)")
		reduce   = flag.Bool("reduce", false, "TSO-aware partial-order reduction (skip commuting buffer-local interleavings)")
		symmetry = flag.Bool("symmetry", false, "canonicalize visited states modulo mutator permutation")
	)
	flag.Parse()

	var cfg core.ModelConfig
	switch *preset {
	case "tiny":
		cfg = core.TinyConfig()
	case "alloc":
		cfg = core.AllocConfig()
	case "two-mutator":
		cfg = core.TwoMutatorConfig()
	case "two-mutator-loads":
		cfg = core.TwoMutatorLoadsConfig()
	case "two-sym":
		cfg = core.SymmetricConfig()
	case "chain":
		cfg = core.ChainConfig()
	case "custom":
		cfg = core.ModelConfig{
			NMutators: *mutators, NRefs: *refs, NFields: *fields,
			OpBudget: *budget, MaxBuf: *maxBuf,
			InitObjects:   map[heap.Ref][]heap.Ref{0: {1}, 1: {heap.NilRef}},
			InitRoots:     []heap.RefSet{heap.SetOf(0)},
			AllowNilStore: true,
		}
	default:
		fmt.Fprintf(os.Stderr, "gcmc: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg.NoDeletionBarrier = *noDel
	cfg.NoInsertionBarrier = *noIns
	cfg.InsertionBarrierOnlyBeforeRootsDone = *insGate
	cfg.SCMemory = *scMem
	cfg.AllocWhite = *allocWhite
	cfg.ElideHS1 = *elide1
	cfg.ElideHS2 = *elide2
	cfg.ElideHS3 = *elide3
	cfg.ElideHS4 = *elide4

	opt := core.VerifyOptions{
		MaxStates:    *maxStates,
		Trace:        true,
		HeadlineOnly: *headline,
		Workers:      *workers,
		Shards:       *shards,
		Audit:        *audit,
		Reduce:       *reduce,
		Symmetry:     *symmetry,
	}
	if !*quiet {
		opt.Progress = func(states, depth int) {
			fmt.Fprintf(os.Stderr, "\r%10d states, depth %4d", states, depth)
		}
	}

	res, err := core.Verify(cfg, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcmc:", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}

	fmt.Printf("states=%d transitions=%d depth=%d complete=%v deadlocks=%d elapsed=%v\n",
		res.States, res.Transitions, res.Depth, res.Complete, res.Deadlocks, res.Elapsed)
	if *reduce {
		fmt.Printf("reduction: ample at %d of %d states\n", res.AmpleStates, res.States)
	}
	if res.States > 0 {
		fmt.Printf("visited-set: %d bytes (%.1f B/state)\n",
			res.VisitedBytes, float64(res.VisitedBytes)/float64(res.States))
	}
	if *audit {
		if res.HashCollisions > 0 {
			fmt.Fprintf(os.Stderr, "gcmc: WARNING: %d fingerprint hash collisions — hashed verdict unsound at this size\n",
				res.HashCollisions)
		} else {
			fmt.Println("audit: 0 fingerprint hash collisions")
		}
	}
	if res.Holds() {
		if res.Complete {
			fmt.Println("VERIFIED: all invariants hold on the full reachable state space")
		} else {
			fmt.Println("NO VIOLATION found within the explored bound")
		}
		return
	}
	fmt.Println("VIOLATION:")
	fmt.Print(res.RenderViolation())
	os.Exit(1)
}
