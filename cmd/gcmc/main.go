// gcmc model-checks the collector model: it explores every reachable
// state of a bounded configuration of GC ∥ M1 ∥ … ∥ Mn ∥ Sys over
// x86-TSO and checks the paper's safety invariants at each one,
// printing a counterexample trace on violation. With -liveness it
// additionally runs the fair-cycle detector over the same state graph
// and reports a verdict per progress property, with lasso-shaped
// counterexamples.
//
// Usage:
//
//	gcmc [flags]
//
// Examples:
//
//	gcmc -preset tiny                     # verify the headline theorem
//	gcmc -preset tiny -no-deletion-barrier  # reproduce the lost-object bug
//	gcmc -preset tiny -liveness           # also check progress properties
//	gcmc -preset tiny -liveness -mute-handshake  # find a fair cycle
//	gcmc -mutators 2 -refs 2 -budget 1    # custom configuration
//	gcmc -preset tiny -json               # machine-readable verdict
//	gcmc -preset tiny -lint -no-hs-fence  # static preflight names the broken rule
//	gcmc -preset tiny -validate-effects   # cross-check the static effect table
//	gcmc -preset tiny -checkpoint run.ckpt  # snapshot the search periodically
//	gcmc -preset tiny -resume run.ckpt    # continue an interrupted run
//	gcmc -remote http://127.0.0.1:8322 -preset tiny  # run on a gcmcd daemon
//
// # Run durability
//
// With -checkpoint the search state is snapshotted atomically every
// -checkpoint-every BFS layers. SIGINT/SIGTERM interrupt gracefully:
// the checker finishes its current layer, writes a final checkpoint,
// prints the partial result marked INCOMPLETE, and exits 130; a second
// signal kills immediately. -resume restarts from a checkpoint (the
// options must match; worker count may differ) and reaches the same
// verdict and counts as an uninterrupted run. -mem-budget caps the heap:
// as usage climbs the run degrades in steps (emergency checkpoint, drop
// audit fingerprints, clean incomplete stop) instead of being OOM-killed.
//
// # Remote runs
//
// With -remote the spec (preset + ablations + options) is submitted to
// a gcmcd daemon instead of run in-process: progress streams back over
// NDJSON, the daemon checkpoints and caches the run, and the verdict —
// including rendered counterexamples — prints exactly as a local run
// would, with the same exit codes. A repeated submission is served from
// the daemon's verdict cache without re-exploring.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/heap"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/verdict"
)

func main() {
	var (
		preset   = flag.String("preset", "tiny", "configuration preset: "+strings.Join(core.PresetNames(), ", ")+", custom")
		mutators = flag.Int("mutators", 1, "custom: number of mutators")
		refs     = flag.Int("refs", 2, "custom: reference universe size")
		fields   = flag.Int("fields", 1, "custom: fields per object")
		budget   = flag.Int("budget", 2, "custom: per-cycle mutator operation budget (0 = unbounded)")
		maxBuf   = flag.Int("maxbuf", 2, "custom: store-buffer bound (0 = unbounded)")

		noDel      = flag.Bool("no-deletion-barrier", false, "ablate the deletion barrier (E11)")
		noIns      = flag.Bool("no-insertion-barrier", false, "ablate the insertion barrier (E11)")
		insGate    = flag.Bool("insertion-barrier-gated", false, "drop the insertion barrier after root marking (§4 observation, E12b)")
		scMem      = flag.Bool("sc", false, "sequential-consistency memory oracle instead of TSO (E13)")
		allocWhite = flag.Bool("alloc-white", false, "allocate with the unmarked sense (E11)")
		unlockedM  = flag.Bool("unlocked-mark", false, "ablate the TSO lock around the mark CAS (E19)")
		noHSFence  = flag.Bool("no-hs-fence", false, "ablate the mfences around handshake signalling (E19)")
		elide1     = flag.Bool("elide-hs1", false, "skip handshake round 1 (E12)")
		elide2     = flag.Bool("elide-hs2", false, "skip handshake round 2 (E12)")
		elide3     = flag.Bool("elide-hs3", false, "skip handshake round 3 (E12)")
		elide4     = flag.Bool("elide-hs4", false, "skip handshake round 4 (E12)")
		muteHS     = flag.Bool("mute-handshake", false, "liveness ablation: mutators never poll handshakes (breaks hs-ack)")
		noDeq      = flag.Bool("no-dequeue", false, "liveness ablation: buffered stores are never committed (breaks buf-drain)")

		maxStates = flag.Int("max-states", 0, "cap on distinct states (0 = none)")
		maxDepth  = flag.Int("max-depth", 0, "cap on BFS depth (0 = none)")
		headline  = flag.Bool("headline-only", false, "check only valid_refs_inv")
		quiet     = flag.Bool("q", false, "suppress progress output")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON verdict on stdout")

		ckptPath  = flag.String("checkpoint", "", "snapshot the search state to this file at layer boundaries (atomic writes)")
		ckptEvery = flag.Int("checkpoint-every", 16, "BFS layers between periodic checkpoints")
		resume    = flag.String("resume", "", "resume the search from this checkpoint file (options must match; -workers may differ)")
		memBudget = flag.Int("mem-budget", 0, "soft heap budget in MiB: degrade (checkpoint, drop audit, stop cleanly) as usage approaches it (0 = none)")
		spillDir  = flag.String("spill-dir", "", "disk-spill directory: when the -mem-budget ladder would stop the run, spill cold visited shards and frontier layers here and complete exhaustively instead (remote runs: the daemon picks a per-job directory)")

		chaosFS    = flag.String("chaos-storage", "", "fault-injection spec for all disk I/O, e.g. 'eio@3', 'crash@run.ckpt+2', 'seed=7,rate=0.01,kinds=eio|enospc' (testing)")
		chaosTrace = flag.String("chaos-trace", "", "write the storage op/fault trace to this file after the run (with -chaos-storage)")

		workers  = flag.Int("workers", 0, "checker worker goroutines per BFS layer (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "visited-set lock stripes (0 = checker default)")
		audit    = flag.Bool("audit", false, "retain full fingerprints and audit 64-bit hash collisions (costs memory)")
		reduce   = flag.Bool("reduce", false, "TSO-aware partial-order reduction (skip commuting buffer-local interleavings)")
		symmetry = flag.Bool("symmetry", false, "canonicalize visited states modulo mutator permutation")

		lint      = flag.Bool("lint", false, "static preflight: run the gclint placement rules on the configuration before exploring")
		validate  = flag.Bool("validate-effects", false, "cross-check the declared effect footprint and derived POR class on every transition/state")
		live      = flag.Bool("liveness", false, "also run the fair-cycle liveness checker on the unreduced state graph")
		liveProps = flag.String("live-prop", "", "comma-separated progress properties to check (default all: hs-ack-m<i>, gc-sweep, buf-drain-gc, buf-drain-m<i>)")

		remote  = flag.String("remote", "", "submit the run to a gcmcd daemon at this base URL instead of exploring in-process")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	abl := core.Ablations{
		NoDeletionBarrier:     *noDel,
		NoInsertionBarrier:    *noIns,
		InsertionBarrierGated: *insGate,
		SCMemory:              *scMem,
		AllocWhite:            *allocWhite,
		UnlockedMark:          *unlockedM,
		NoHSFence:             *noHSFence,
		ElideHS1:              *elide1,
		ElideHS2:              *elide2,
		ElideHS3:              *elide3,
		ElideHS4:              *elide4,
		MuteHandshake:         *muteHS,
		NoDequeue:             *noDeq,
	}

	if *remote != "" {
		jo := core.JobOptions{
			MaxStates:       *maxStates,
			MaxDepth:        *maxDepth,
			HeadlineOnly:    *headline,
			Audit:           *audit,
			Reduce:          *reduce,
			Symmetry:        *symmetry,
			Liveness:        *live,
			ValidateEffects: *validate,
			Workers:         *workers,
			Shards:          *shards,
			MemBudgetMiB:    *memBudget,
			Spill:           *spillDir != "",
		}
		if *liveProps != "" {
			jo.LivenessProps = strings.Split(*liveProps, ",")
		}
		os.Exit(runRemote(*remote, *preset, abl, jo, *quiet, *jsonOut))
	}

	var cfg core.ModelConfig
	if *preset == "custom" {
		cfg = core.ModelConfig{
			NMutators: *mutators, NRefs: *refs, NFields: *fields,
			OpBudget: *budget, MaxBuf: *maxBuf,
			InitObjects:   map[heap.Ref][]heap.Ref{0: {1}, 1: {heap.NilRef}},
			InitRoots:     []heap.RefSet{heap.SetOf(0)},
			AllowNilStore: true,
		}
	} else {
		var err error
		cfg, err = core.PresetConfig(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcmc:", err)
			os.Exit(2)
		}
	}
	abl.Apply(&cfg)

	if *lint {
		rep, err := analysis.LintModel(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcmc: lint:", err)
			os.Exit(2)
		}
		if rep.Clean() {
			fmt.Fprintln(os.Stderr, "lint: clean (no placement rule fired)")
		} else {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s) — the exploration below should find the corresponding violation:\n", len(rep.Findings))
			for _, f := range rep.Findings {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
		}
	}

	// Graceful interruption: the first SIGINT/SIGTERM cancels the run's
	// context — the checker finishes its current layer, writes a final
	// checkpoint when one is configured, and the partial result is
	// reported INCOMPLETE with exit status 130. After the first signal
	// the handler detaches, so a second signal kills immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\ngcmc: caught %v — finishing the current layer (repeat to kill)\n", s)
		cancel()
		signal.Stop(sigc)
	}()

	var ffs *storage.FaultFS
	if *chaosFS != "" {
		var ferr error
		ffs, ferr = storage.FromSpec(nil, *chaosFS)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "gcmc:", ferr)
			os.Exit(2)
		}
	}

	opt := core.VerifyOptions{
		MaxStates:       *maxStates,
		MaxDepth:        *maxDepth,
		Trace:           true,
		HeadlineOnly:    *headline,
		Workers:         *workers,
		Shards:          *shards,
		Audit:           *audit,
		Reduce:          *reduce,
		Symmetry:        *symmetry,
		Liveness:        *live,
		ValidateEffects: *validate,
		Context:         ctx,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		MemBudget:       int64(*memBudget) << 20,
		SpillDir:        *spillDir,
	}
	if ffs != nil {
		opt.FS = ffs
	}
	if *liveProps != "" {
		opt.LivenessProps = strings.Split(*liveProps, ",")
		opt.Liveness = true
	}
	if !*quiet {
		opt.Progress = func(p core.Progress) {
			fmt.Fprintf(os.Stderr, "\r%10d states, %10d transitions, depth %4d, %8.1fs",
				p.States, p.Transitions, p.Depth, p.Elapsed.Seconds())
		}
	}

	res, err := core.Verify(cfg, opt)
	if ffs != nil && *chaosTrace != "" {
		if terr := os.WriteFile(*chaosTrace, []byte(storage.FormatTrace(ffs.Trace())), 0o644); terr != nil {
			fmt.Fprintln(os.Stderr, "gcmc: chaos trace:", terr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcmc:", err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if res.Stopped == explore.StopPanic {
		fmt.Fprintf(os.Stderr, "gcmc: internal error: %v\n", res.Err)
		if pe, ok := res.Err.(*explore.PanicError); ok {
			fmt.Fprintf(os.Stderr, "%s\n", pe.Stack)
		}
		os.Exit(2)
	}
	if res.Stopped == explore.StopSpill {
		// The disk rung failed: the run is incomplete through no fault of
		// the model. That is an environment error, not a verdict.
		fmt.Fprintf(os.Stderr, "gcmc: spill failed: %v\n", res.Err)
		os.Exit(2)
	}
	if res.Err != nil {
		// A checkpoint write failed but the run went on: warn, don't die.
		fmt.Fprintln(os.Stderr, "gcmc: warning:", res.Err)
	}
	if res.Checkpoints > 0 && *ckptPath != "" {
		fmt.Fprintf(os.Stderr, "gcmc: %d checkpoint(s) written to %s\n", res.Checkpoints, *ckptPath)
	}

	if *jsonOut {
		fp, _, ferr := core.Fingerprint(cfg, opt)
		if ferr != nil {
			fp = 0
		}
		rec := verdict.New(*preset, abl, fp, res)
		rec.Build = buildinfo.String()
		b, merr := rec.Marshal()
		if merr != nil {
			fmt.Fprintln(os.Stderr, "gcmc:", merr)
			os.Exit(2)
		}
		os.Stdout.Write(b)
		os.Exit(rec.ExitCode())
	}

	fmt.Printf("states=%d transitions=%d depth=%d complete=%v deadlocks=%d elapsed=%v\n",
		res.States, res.Transitions, res.Depth, res.Complete, res.Deadlocks, res.Elapsed)
	if *reduce {
		fmt.Printf("reduction: ample at %d of %d states\n", res.AmpleStates, res.States)
	}
	if res.Effects != nil {
		ev, st := res.Effects.Stats()
		fmt.Printf("effects: %d transitions and %d states validated against the declared footprint\n", ev, st)
	}
	if res.States > 0 {
		fmt.Printf("visited-set: %d bytes (%.1f B/state)\n",
			res.VisitedBytes, float64(res.VisitedBytes)/float64(res.States))
	}
	if res.Spilled.Active {
		fmt.Printf("spill: %d layer(s) parked, %d flush(es), %d record(s), %d bytes via %s\n",
			res.Spilled.Layers, res.Spilled.Flushes, res.Spilled.States, res.Spilled.Bytes, *spillDir)
	}
	if res.Degraded {
		fmt.Fprintln(os.Stderr, "gcmc: note: memory watchdog dropped audit fingerprints mid-run; collision count is partial")
	}
	if *audit {
		if res.HashCollisions > 0 {
			fmt.Fprintf(os.Stderr, "gcmc: WARNING: %d fingerprint hash collisions — hashed verdict unsound at this size\n",
				res.HashCollisions)
		} else {
			fmt.Println("audit: 0 fingerprint hash collisions")
		}
	}
	if res.Violation != nil {
		fmt.Println("VIOLATION:")
		fmt.Print(res.RenderViolation())
		os.Exit(1)
	}
	if lr := res.Liveness; lr != nil {
		fmt.Printf("liveness: states=%d transitions=%d depth=%d complete=%v graph=%d bytes elapsed=%v\n",
			lr.States, lr.Transitions, lr.Depth, lr.Complete, lr.GraphBytes, lr.Elapsed)
		for _, p := range lr.Properties {
			verdict := "holds"
			if !p.Holds {
				verdict = "FAIR CYCLE"
			}
			fmt.Printf("  %-14s %-10s %s\n", p.Name, verdict, p.Desc)
		}
		if !lr.Holds() {
			for _, p := range lr.Violations() {
				fmt.Printf("LIVENESS VIOLATION: %s (%s)\n", p.Name, p.Desc)
				fmt.Print(p.Counterexample.Render(res.Model))
			}
			os.Exit(1)
		}
	}
	if res.Holds() {
		if res.Liveness != nil {
			fmt.Println("VERIFIED: all invariants and progress properties hold on the full reachable state space")
		} else {
			fmt.Println("VERIFIED: all invariants hold on the full reachable state space")
		}
		return
	}
	// No violation, but the exploration did not cover the full space:
	// the verdict is explicitly inconclusive, never "holds".
	fmt.Printf("INCOMPLETE (%s): no violation found in the explored portion — not a verification\n", stopReason(res))
	if wasInterrupted(res) {
		os.Exit(130)
	}
}

// runRemote submits the spec to a gcmcd daemon, streams progress back,
// and prints the verdict with the same output and exit codes as a
// local run.
func runRemote(base, preset string, abl core.Ablations, jo core.JobOptions, quiet, jsonOut bool) int {
	if preset == "custom" {
		fmt.Fprintln(os.Stderr, "gcmc: -remote supports named presets only (custom configurations are CLI-local)")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cli := server.NewClient(base)
	spec := core.JobSpec{Preset: preset, Ablations: abl, Options: jo}
	info, err := cli.Submit(ctx, spec, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcmc:", err)
		return 2
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "gcmc: job %s (fingerprint %s) on %s: %s\n", info.ID, info.Fingerprint, base, info.State)
	}
	if !info.State.Terminal() {
		var fn func(server.JobInfo)
		if !quiet {
			fn = func(i server.JobInfo) {
				if p := i.Progress; p != nil {
					fmt.Fprintf(os.Stderr, "\r%10d states, %10d transitions, depth %4d, %8.1fs",
						p.States, p.Transitions, p.Depth, p.ElapsedSec)
				}
			}
		}
		info, err = cli.Stream(ctx, info.ID, fn)
		if !quiet {
			fmt.Fprintln(os.Stderr)
		}
		if ctx.Err() != nil {
			// Interrupted at the client: cancel the remote job too (it
			// checkpoints at the next layer barrier) and report 130.
			cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if fin, cerr := cli.Cancel(cctx, info.ID); cerr == nil {
				info = fin
			}
			fmt.Fprintf(os.Stderr, "gcmc: interrupted — remote job %s cancelled (state %s)\n", info.ID, info.State)
			return 130
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcmc:", err)
			return 2
		}
	}
	switch info.State {
	case core.JobFailed:
		fmt.Fprintf(os.Stderr, "gcmc: remote job %s failed: %s\n", info.ID, info.Error)
		return 2
	case core.JobCancelled:
		fmt.Fprintf(os.Stderr, "gcmc: remote job %s was cancelled\n", info.ID)
		return 130
	}
	rec := info.Verdict
	if rec == nil {
		fmt.Fprintf(os.Stderr, "gcmc: remote job %s finished without a verdict\n", info.ID)
		return 2
	}
	if jsonOut {
		b, merr := rec.Marshal()
		if merr != nil {
			fmt.Fprintln(os.Stderr, "gcmc:", merr)
			return 2
		}
		os.Stdout.Write(b)
		return rec.ExitCode()
	}
	if rec.Cached {
		fmt.Fprintf(os.Stderr, "gcmc: verdict served from cache (produced by %s)\n", rec.Build)
	}
	return printRecord(rec)
}

// printRecord renders a verdict record the way the local path renders a
// VerifyResult, returning the process exit code.
func printRecord(rec *verdict.Record) int {
	fmt.Printf("states=%d transitions=%d depth=%d complete=%v deadlocks=%d elapsed=%.2fs\n",
		rec.States, rec.Transitions, rec.Depth, rec.Complete, rec.Deadlocks, rec.ElapsedSec)
	if v := rec.Violation; v != nil {
		fmt.Println("VIOLATION:")
		fmt.Print(v.Rendered)
		return 1
	}
	if l := rec.Liveness; l != nil {
		fmt.Printf("liveness: states=%d transitions=%d depth=%d complete=%v elapsed=%.2fs\n",
			l.States, l.Transitions, l.Depth, l.Complete, l.ElapsedSec)
		for _, p := range l.Properties {
			v := "holds"
			if !p.Holds {
				v = "FAIR CYCLE"
			}
			fmt.Printf("  %-14s %-10s %s\n", p.Name, v, p.Desc)
		}
		if !l.Holds {
			for _, p := range l.Properties {
				if p.Holds {
					continue
				}
				fmt.Printf("LIVENESS VIOLATION: %s (%s)\n", p.Name, p.Desc)
				fmt.Print(p.Rendered)
			}
			return 1
		}
	}
	if rec.Verdict == "verified" {
		if rec.Liveness != nil {
			fmt.Println("VERIFIED: all invariants and progress properties hold on the full reachable state space")
		} else {
			fmt.Println("VERIFIED: all invariants hold on the full reachable state space")
		}
		return 0
	}
	reason := rec.Stopped
	if reason == "" {
		if l := rec.Liveness; l != nil && l.Stopped != "" {
			reason = "liveness " + l.Stopped
		} else {
			reason = "bounded"
		}
	}
	fmt.Printf("INCOMPLETE (%s): no violation found in the explored portion — not a verification\n", reason)
	if rec.Interrupted() {
		return 130
	}
	return 0
}

// stopReason names why the run is incomplete.
func stopReason(res core.VerifyResult) string {
	if res.Stopped != explore.StopNone {
		return string(res.Stopped)
	}
	if res.Liveness != nil && res.Liveness.Stopped != explore.StopNone {
		return "liveness " + string(res.Liveness.Stopped)
	}
	return "bounded"
}

// wasInterrupted reports whether either pass stopped on a signal.
func wasInterrupted(res core.VerifyResult) bool {
	return res.Stopped == explore.StopInterrupted ||
		(res.Liveness != nil && res.Liveness.Stopped == explore.StopInterrupted)
}
