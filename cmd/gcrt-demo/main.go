// gcrt-demo drives the executable collector kernel: mutator goroutines
// churn a shared arena while the collector cycles on-the-fly, and the
// demo reports reclamation and barrier statistics.
//
// Usage:
//
//	gcrt-demo -mutators 4 -slots 4096 -cycles 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/core"
)

func main() {
	var (
		nMut   = flag.Int("mutators", 4, "mutator goroutines")
		slots  = flag.Int("slots", 4096, "arena slots")
		fields = flag.Int("fields", 2, "fields per object")
		cycles = flag.Int("cycles", 20, "collection cycles to run")
		noDel  = flag.Bool("no-deletion-barrier", false, "ablate the deletion barrier (expect faults)")
		noIns  = flag.Bool("no-insertion-barrier", false, "ablate the insertion barrier")
	)
	flag.Parse()

	rt := core.NewRuntime(core.RuntimeOptions{
		Slots: *slots, Fields: *fields, Mutators: *nMut,
		NoDeletionBarrier: *noDel, NoInsertionBarrier: *noIns,
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < *nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id) + 1))
			m.Alloc()
			for {
				select {
				case <-stop:
					m.Park()
					return
				default:
				}
				// Keep a persistent working set of roots; when the arena
				// is exhausted, sit at safe points until the collector
				// replenishes the free list (an allocation stall).
				n := m.NumRoots()
				switch {
				case n < 4:
					if m.Alloc() == -1 {
						m.SafePoint()
					}
				case n > 32:
					m.Discard(rng.Intn(n))
				default:
					switch rng.Intn(4) {
					case 0:
						m.Alloc()
					case 1:
						m.Load(rng.Intn(n), rng.Intn(*fields))
					case 2:
						dst := rng.Intn(n)
						if rng.Intn(4) == 0 {
							dst = -1
						}
						m.Store(rng.Intn(n), rng.Intn(*fields), dst)
					case 3:
						if n > 4 {
							m.Discard(rng.Intn(n))
						}
					}
				}
				m.SafePoint()
			}
		}(i)
	}

	for c := 0; c < *cycles; c++ {
		freed := rt.Collect()
		fmt.Printf("cycle %2d: freed %4d, live %4d/%d\n",
			c+1, freed, rt.Arena().LiveCount(), *slots)
	}
	close(stop)
	wg.Wait()

	s := rt.Stats()
	fmt.Println()
	fmt.Println("stats:", s)
	if f := rt.Arena().Faults.Load(); f > 0 {
		fmt.Printf("LOST OBJECTS: %d dead-slot accesses — the ablated collector freed reachable objects\n", f)
		os.Exit(1)
	}
	fmt.Println("no lost objects: every reachable object survived every cycle")
}
