// gcrt-demo drives the executable collector kernel: mutator goroutines
// churn a shared arena while the collector cycles on-the-fly, and the
// demo reports reclamation, barrier, and handshake-latency statistics.
//
// With -shape it runs one of the adversarial workload generators
// (deeplist, widetree, cycles, churn, pipeline) with the online
// invariant oracle attached; without it, a simple random churn loop.
//
// Usage:
//
//	gcrt-demo -mutators 4 -slots 4096 -cycles 20
//	gcrt-demo -shape churn -seed 7 -oracle
//	gcrt-demo -shape deeplist -no-deletion-barrier -oracle   # expect findings
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"repro/internal/buildinfo"
	"runtime"
	"sync"

	"repro/internal/gcrt"
	"repro/internal/gcrt/workload"
)

func main() {
	var (
		nMut    = flag.Int("mutators", 4, "mutator goroutines")
		slots   = flag.Int("slots", 4096, "arena slots")
		fields  = flag.Int("fields", 2, "fields per object")
		cycles  = flag.Int("cycles", 20, "collection cycles to run")
		workers = flag.Int("mark-workers", 1, "parallel tracing workers (work-stealing deques)")
		shape   = flag.String("shape", "", "workload shape: deeplist|widetree|cycles|churn|pipeline (empty = simple churn loop)")
		seed    = flag.Int64("seed", 1, "workload generator seed")
		oracle  = flag.Bool("oracle", false, "attach the online invariant oracle (implied by -shape)")
		noDel   = flag.Bool("no-deletion-barrier", false, "ablate the deletion barrier (expect faults/findings)")
		noIns   = flag.Bool("no-insertion-barrier", false, "ablate the insertion barrier")
		allocW  = flag.Bool("alloc-white", false, "ablate black allocation (allocate unmarked in every phase)")
		legacy  = flag.Bool("legacy-alloc", false, "use the seed's shared free-list allocator instead of TLABs")
		version = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	opt := gcrt.Options{
		Slots: *slots, Fields: *fields, Mutators: *nMut,
		MarkWorkers:        *workers,
		NoDeletionBarrier:  *noDel,
		NoInsertionBarrier: *noIns,
		AllocWhite:         *allocW,
		LegacyAlloc:        *legacy,
	}

	if *shape != "" {
		runWorkload(*shape, *seed, *cycles, *nMut, *slots, *fields, opt)
		return
	}

	rt := gcrt.New(opt)
	var o *gcrt.Oracle
	if *oracle {
		o = rt.EnableOracle(gcrt.OracleOptions{SampleEvery: 1})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < *nMut; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := rt.Mutator(id)
			rng := rand.New(rand.NewSource(int64(id) + 1))
			m.Alloc()
			for {
				select {
				case <-stop:
					m.Park()
					return
				default:
				}
				// Keep a persistent working set of roots; when the arena
				// is exhausted, sit at safe points until the collector
				// replenishes the free list (an allocation stall).
				n := m.NumRoots()
				switch {
				case n < 4:
					if m.Alloc() == -1 {
						m.SafePoint()
					}
				case n > 32:
					m.Discard(rng.Intn(n))
				default:
					switch rng.Intn(4) {
					case 0:
						m.Alloc()
					case 1:
						m.Load(rng.Intn(n), rng.Intn(*fields))
					case 2:
						dst := rng.Intn(n)
						if rng.Intn(4) == 0 {
							dst = -1
						}
						m.Store(rng.Intn(n), rng.Intn(*fields), dst)
					case 3:
						if n > 4 {
							m.Discard(rng.Intn(n))
						}
					}
				}
				m.SafePoint()
				// Yield so the collector advances between handshake rounds
				// even on GOMAXPROCS=1 (cf. the workload interpreter).
				runtime.Gosched()
			}
		}(i)
	}

	for c := 0; c < *cycles; c++ {
		freed := rt.Collect()
		fmt.Printf("cycle %2d: freed %4d, live %4d/%d\n",
			c+1, freed, rt.Arena().LiveCount(), *slots)
		if o != nil {
			rt.Audit()
		}
	}
	close(stop)
	wg.Wait()

	fmt.Println()
	fmt.Println("stats:", rt.Stats())
	fail := false
	if f := rt.Arena().Faults.Load(); f > 0 {
		fmt.Printf("LOST OBJECTS: %d dead-slot accesses — the ablated collector freed reachable objects\n", f)
		fail = true
	}
	if o != nil && o.FindingCount() > 0 {
		fmt.Printf("ORACLE FINDINGS: %d (%v)\n", o.FindingCount(), o.CountByCheck())
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("no lost objects: every reachable object survived every cycle")
}

// runWorkload runs one adversarial workload shape with the oracle
// attached and reports the outcome.
func runWorkload(name string, seed int64, cycles, nMut, slots, fields int, opt gcrt.Options) {
	var shape workload.Shape
	found := false
	for _, s := range workload.Shapes {
		if s.String() == name {
			shape, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "gcrt-demo: unknown shape %q\n", name)
		os.Exit(2)
	}

	res := workload.Run(workload.Config{
		Shape:    shape,
		Mutators: nMut,
		Slots:    slots,
		Fields:   fields,
		Seed:     seed,
		Cycles:   cycles,
		Runtime:  opt,
		Oracle:   gcrt.OracleOptions{SampleEvery: 1},
	})

	fmt.Printf("shape=%s seed=%d mutators=%d cycles=%d\n", shape, seed, nMut, cycles)
	fmt.Printf("ops=%d checks=%d\n", res.Ops, res.Checks)
	fmt.Println("stats:", res.Stats)
	if res.Clean() {
		fmt.Println("clean: zero oracle findings, zero arena faults")
		return
	}
	fmt.Printf("findings=%d byCheck=%v faults=%d\n", res.Findings, res.ByCheck, res.Faults)
	for _, f := range res.Details {
		fmt.Println("  ", f)
	}
	os.Exit(1)
}
