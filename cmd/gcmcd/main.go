// gcmcd is the model-checker daemon: verification as a service.
//
// It accepts verification jobs (preset + ablations + options) over an
// HTTP/JSON API, runs them on a bounded worker pool with per-job
// checkpoints and memory budgets, streams progress as NDJSON, caches
// verdicts by options fingerprint in a CRC-checked on-disk index, and
// persists every job under -data — a daemon killed mid-job (even with
// SIGKILL) resumes in-flight work from the latest layer-barrier
// checkpoint on restart.
//
// Usage:
//
//	gcmcd -data ./var &
//	gcmc -remote http://127.0.0.1:8322 -preset tiny
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: running jobs
// checkpoint at the next layer barrier and are marked interrupted, then
// the process exits 0; the next start resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8322", "listen address (host:port; port 0 picks a free port)")
		data       = flag.String("data", "gcmcd-data", "managed data directory (jobs, checkpoints, verdict cache)")
		workers    = flag.Int("workers", 1, "concurrent verification jobs")
		ckptEvery  = flag.Int("checkpoint-every", 4, "default checkpoint cadence in BFS layers")
		memBudget  = flag.Int("mem-budget", 0, "default per-job soft heap budget in MiB (0 = none)")
		retryMax   = flag.Int("retry-attempts", 0, "max attempts per job under transient storage failures (0 = default 3)")
		chaosFS    = flag.String("chaos-storage", "", "fault-injection spec for all daemon disk I/O, e.g. 'crash@run.ckpt+2' (testing; an injected crash exits 137)")
		corpus     = flag.Bool("corpus", false, "enqueue the preset x ablation x {TSO,SC} corpus as background jobs at startup")
		corpusMax  = flag.Int("corpus-max-states", 50000, "per-cell state cap for corpus jobs")
		corpusOnly = flag.String("corpus-presets", "", "comma-separated preset filter for the corpus (empty = all)")
		quiet      = flag.Bool("q", false, "suppress the per-job log")
		version    = flag.Bool("version", false, "print build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return 0
	}

	lg := log.New(os.Stderr, "gcmcd: ", log.LstdFlags)
	elg := lg
	if *quiet {
		elg = nil
	}
	opt := server.Options{
		DataDir:         *data,
		Workers:         *workers,
		CheckpointEvery: *ckptEvery,
		MemBudgetMiB:    *memBudget,
		CorpusMaxStates: *corpusMax,
		Retry:           server.RetryPolicy{MaxAttempts: *retryMax},
		Log:             elg,
	}
	if *chaosFS != "" {
		ffs, err := storage.FromSpec(nil, *chaosFS)
		if err != nil {
			lg.Printf("%v", err)
			return 2
		}
		// An injected crash freezes the FS and kills the process the way
		// the kernel would: abruptly, mid-write, exit 137 (SIGKILL's
		// code) — the crash-recovery tests then restart on the remains.
		ffs.OnCrash(func() {
			lg.Printf("chaos: injected crash-point hit — exiting 137")
			os.Exit(137)
		})
		opt.FS = ffs
	}
	if *corpusOnly != "" {
		for _, p := range strings.Split(*corpusOnly, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opt.CorpusPresets = append(opt.CorpusPresets, p)
			}
		}
	}
	engine, err := server.New(opt)
	if err != nil {
		lg.Printf("%v", err)
		return 2
	}
	if *corpus {
		n, err := engine.EnqueueCorpus()
		if err != nil {
			lg.Printf("corpus: %v", err)
			return 2
		}
		lg.Printf("corpus: %d cells enqueued", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Printf("%v", err)
		return 2
	}
	srv := &http.Server{Handler: engine.Handler()}
	// The address line goes to stdout so wrappers (tests, CI) can
	// discover a port-0 listener.
	fmt.Printf("gcmcd listening on %s\n", ln.Addr())
	lg.Printf("build %s, data %s, %d worker(s)", buildinfo.String(), *data, *workers)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		lg.Printf("%s: shutting down (running jobs checkpoint and resume on next start)", sig)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			lg.Printf("serve: %v", err)
			return 2
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := engine.Shutdown(ctx); err != nil {
		lg.Printf("%v", err)
		return 2
	}
	lg.Printf("stopped")
	return 0
}
