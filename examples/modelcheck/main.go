// Modelcheck: re-establish the paper's headline theorem on a bounded
// configuration by exhaustive state-space exploration.
//
//	GC ∥ M1 ∥ … ∥ Mn ∥ Sys ⊨ □(∀r. reachable r → valid_ref r)
//
// Every reachable state of the CIMP model — collector, mutators, and the
// x86-TSO memory system with its store buffers and lock — is checked
// against the full battery of invariants from §3.2 of the paper.
//
// Run:
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
)

func main() {
	cfg := core.TinyConfig() // h → x, one mutator: ~1M states
	workers := runtime.GOMAXPROCS(0)
	fmt.Println("configuration: 1 mutator, heap h→x (only h rooted),")
	fmt.Println("TSO buffers bounded at 2, two heap operations per cycle")
	fmt.Println("checking: valid_refs_inv, strong/weak tricolor, valid_W_inv,")
	fmt.Println("          mutator_phase_inv, sys_phase_inv, gc_W_empty_mut_inv,")
	fmt.Println("          sweep_inv, tso_control_inv")
	fmt.Printf("checker: %d workers, sharded visited set, 64-bit hashed fingerprints\n", workers)
	fmt.Println()

	res, err := core.Verify(cfg, core.VerifyOptions{
		Trace:   true,
		Workers: workers,
		Progress: func(p core.Progress) {
			fmt.Fprintf(os.Stderr, "\r%9d states, depth %4d", p.States, p.Depth)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr)

	fmt.Printf("explored %d states (%d transitions) to depth %d in %v\n",
		res.States, res.Transitions, res.Depth, res.Elapsed)
	fmt.Printf("visited set: %.1f bytes/state (hash-compacted)\n",
		float64(res.VisitedBytes)/float64(res.States))
	if !res.Holds() {
		fmt.Println("VIOLATION — this should never happen for the verified collector:")
		fmt.Print(res.RenderViolation())
		os.Exit(1)
	}
	if res.Complete {
		fmt.Println("VERIFIED: the headline safety property and all auxiliary")
		fmt.Println("invariants hold on every reachable state of this configuration.")
	} else {
		fmt.Println("no violation within the explored bound")
	}
}
