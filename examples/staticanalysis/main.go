// Staticanalysis: lint the collector model without exploring it, and
// cross-check the static layer against the dynamic checker.
//
// The static analyzer (package analysis, CLI cmd/gclint) never runs the
// model. It extracts a declared effect footprint from the CIMP program
// trees, builds per-process control-flow graphs, and evaluates the
// paper's protocol obligations as placement rules: barrier placement on
// every store path, the lock around the mark CAS, fences before
// handshake signalling, and a full handshake round between the phase
// writes. This example shows the three ways the layer pays off:
//
//  1. an ablated configuration is rejected in milliseconds, naming the
//     broken rule — no million-state search needed;
//  2. the informational report names every relaxed store→load pair the
//     model deliberately tolerates (the paper's point) and what each
//     mfence suppresses;
//  3. a bounded validated exploration replays every transition against
//     the declared footprint and diffs the derived partial-order
//     -reduction safe class against the handwritten one, tying the
//     static layer to the dynamic semantics.
//
// Run:
//
//	go run ./examples/staticanalysis
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	// 1. Static verdicts: the shipped model is clean, ablations are not.
	fmt.Println("== static placement rules ==")
	clean, err := analysis.LintModel(core.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiny:                  clean=%v\n", clean.Clean())

	ablations := []struct {
		name string
		mut  func(*core.ModelConfig)
	}{
		{"no-deletion-barrier", func(c *core.ModelConfig) { c.NoDeletionBarrier = true }},
		{"unlocked-mark", func(c *core.ModelConfig) { c.UnlockedMark = true }},
		{"no-hs-fence", func(c *core.ModelConfig) { c.NoHSFence = true }},
		{"elide-hs2", func(c *core.ModelConfig) { c.ElideHS2 = true }},
	}
	for _, abl := range ablations {
		cfg := core.TinyConfig()
		abl.mut(&cfg)
		rep, err := analysis.LintModel(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %s\n", abl.name+":", rep.Findings[0].Rule)
	}

	// 2. What the model tolerates: relaxed pairs and fence coverage.
	fmt.Println("\n== tolerated relaxed store→load pairs (informational) ==")
	fmt.Printf("%d pairs; e.g. %s → %s on p%d\n",
		len(clean.Relaxed), clean.Relaxed[0].Store, clean.Relaxed[0].Load, clean.Relaxed[0].PID)
	for _, c := range clean.FenceCoverage {
		fmt.Printf("fence %s suppresses %d pair(s)\n", c.Label, c.Covers)
	}

	// 3. Dynamic cross-check: replay the declarations against a bounded
	// exploration.
	fmt.Println("\n== validated exploration (bounded) ==")
	res, err := core.Verify(core.TinyConfig(), core.VerifyOptions{
		MaxStates:       50_000,
		ValidateEffects: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ev, st := res.Effects.Stats()
	fmt.Printf("no-violation=%v states=%d transitions=%d\n", res.NoViolation(), res.States, res.Transitions)
	fmt.Printf("%d transitions checked against the declared footprint,\n", ev)
	fmt.Printf("%d states diffed handwritten-vs-derived POR safe class\n", st)
}
