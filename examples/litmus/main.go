// Litmus: see x86-TSO with your own eyes.
//
// The store-buffering test (SB) is the observable heart of TSO — both
// threads can read 0, which no interleaving of a sequentially consistent
// machine allows. This example explores SB exhaustively under both
// memory models, prints the outcome sets side by side, and shows how
// MFENCE (as used by the collector's handshakes) and locked CMPXCHG (as
// used by the marking CAS) each restore the SC outcomes.
//
// Run:
//
//	go run ./examples/litmus
package main

import (
	"fmt"

	"repro/internal/litmus"
	"repro/internal/tso"
)

func show(name string, prog tso.Program) {
	tsoOuts := tso.Explore(prog, tso.TSO)
	scOuts := tso.Explore(prog, tso.SC)
	fmt.Printf("%s:\n", name)
	for _, k := range tso.OutcomeKeys(tsoOuts) {
		marker := "  (also under SC)"
		if _, ok := scOuts[k]; !ok {
			marker = "  ← TSO ONLY"
		}
		fmt.Printf("    %s%s\n", k, marker)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Thread 0:  x ← 1; r0 ← y        Thread 1:  y ← 1; r0 ← x")
	fmt.Println()
	show("SB under x86-TSO (exhaustive)", litmus.SB().Prog)
	show("SB with MFENCE between store and load", litmus.SBFence().Prog)
	show("SB with locked CMPXCHG stores", litmus.SBCas().Prog)

	fmt.Println("The 0:r0=0 1:r0=0 outcome is why the collector cannot assume")
	fmt.Println("sequential consistency: a mutator's store can sit unseen in its")
	fmt.Println("store buffer while it reads stale control state. The paper's")
	fmt.Println("proof accounts for every such window; the fences at handshakes")
	fmt.Println("and the locked CAS in mark() are exactly the points where the")
	fmt.Println("collector forces buffers to drain.")
}
