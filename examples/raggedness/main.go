// Raggedness: watch a mutator act on stale control state.
//
// Figure 3 of the paper annotates the control-state transitions with ⤳
// arrows: because the collector's writes to phase and f_M sit in its TSO
// store buffer until committed, a mutator can read the *previous* value
// after the collector has already moved on — and the handshake rounds
// are exactly what bounds this uncertainty.
//
// This example random-walks the formal model, catches concrete stale
// reads in the act, and prints the evidence: the collector's pending
// buffer, what memory says, and what the mutator actually loaded.
//
// Run:
//
//	go run ./examples/raggedness
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/cimp"
	"repro/internal/core"
	"repro/internal/gcmodel"
)

func main() {
	cfg := core.TinyConfig()
	m, err := gcmodel.Build(cfg)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(2))
	st := m.Initial()
	staleSeen := 0

	for step := 0; step < 200_000 && staleSeen < 3; step++ {
		type cand struct {
			next cimp.System[*gcmodel.Local]
			ev   cimp.Event
		}
		var cands []cand
		m.Successors(st, func(n cimp.System[*gcmodel.Local], ev cimp.Event) {
			// Deprioritize buffer commits: stale windows exist exactly
			// while writes linger in the collector's store buffer, and a
			// uniform walk drains them too eagerly to observe anything.
			w := 6
			if ev.Label == "sys-dequeue-write-buffer" {
				w = 1
			}
			for k := 0; k < w; k++ {
				cands = append(cands, cand{n, ev})
			}
		})
		c := cands[rng.Intn(len(cands))]

		// A stale read: a mutator load of phase or f_M answered while the
		// collector still has a newer write in its buffer.
		if req, ok := c.ev.Alpha.(gcmodel.Req); ok && req.Kind == gcmodel.RRead &&
			c.ev.Proc != gcmodel.GCPID {
			g := gcmodel.Global{Model: m, State: st}
			if resp, ok := c.ev.Beta.(gcmodel.Resp); ok {
				switch req.Loc.Kind {
				case gcmodel.LPhase:
					fresh := g.GCViewPhase()
					got := resp.Val.Phase()
					if got != fresh {
						staleSeen++
						fmt.Printf("stale read #%d at step %d:\n", staleSeen, step)
						fmt.Printf("  mutator loaded phase = %v\n", got)
						fmt.Printf("  the collector is already at phase = %v\n", fresh)
						fmt.Printf("  pending in the collector's store buffer: %v\n\n",
							g.Buf(gcmodel.GCPID))
					}
				case gcmodel.LFM:
					fresh := g.GCViewFM()
					if resp.Val.Bool() != fresh {
						staleSeen++
						fmt.Printf("stale read #%d at step %d:\n", staleSeen, step)
						fmt.Printf("  mutator loaded f_M = %v, collector's view is %v\n",
							resp.Val.Bool(), fresh)
						fmt.Printf("  pending: %v\n\n", g.Buf(gcmodel.GCPID))
					}
				}
			}
		}
		st = c.next
	}

	if staleSeen == 0 {
		fmt.Println("no stale reads observed (increase the step budget)")
		return
	}
	fmt.Println("Every one of these windows is covered by the proof: the write")
	fmt.Println("barriers tolerate stale phase and f_M values (Figure 5 rechecks")
	fmt.Println("the flag under the TSO lock), and the handshake fences bound how")
	fmt.Println("long the disagreement can last — that is the content of the")
	fmt.Println("sys_phase_inv and mutator_phase_inv invariants (§3.2).")
}
