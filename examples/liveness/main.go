// Liveness: check the paper's informal progress obligations with the
// fair-cycle detector, and watch a broken collector fail them.
//
// The paper proves only safety (□(reachable r → valid_ref r)) and
// leaves liveness — handshakes complete, the collector reaches sweep,
// buffers drain — unproven. The liveness subsystem closes that gap on
// bounded configurations: it materializes the reachable state graph and
// searches it for weakly fair cycles on which a progress obligation
// stays outstanding forever. Weak fairness is what separates real
// protocol bugs from scheduler artifacts: a cycle only counts if no
// runnable process is starved, no committable buffer procrastinated,
// and no pending handshake left unpolled by a runnable mutator.
//
// This example verifies a clean configuration, then breaks it twice:
//
//   - -mute-handshake: mutators never poll, so a signaled handshake is
//     never acknowledged (the paper's §3.1 regular-polling assumption
//     dropped);
//   - -no-dequeue: the system never commits buffered stores, so TSO
//     write buffers grow stale forever (the hardware drain assumption
//     dropped).
//
// Each break yields a lasso counterexample: a finite stem, then a cycle
// that repeats forever — replayed and validated step-by-step through
// the same transition relation the safety checker explores.
//
// Run:
//
//	go run ./examples/liveness
package main

import (
	"fmt"

	"repro/internal/core"
)

func config() core.ModelConfig {
	cfg := core.TinyConfig()
	// Stores only, budget 1, buffers bounded at 1: small enough to keep
	// all three graph builds instant.
	cfg.OpBudget = 1
	cfg.MaxBuf = 1
	cfg.DisableLoad = true
	cfg.DisableDiscard = true
	return cfg
}

func check(name string, cfg core.ModelConfig) core.VerifyResult {
	res, err := core.Verify(cfg, core.VerifyOptions{Liveness: true})
	if err != nil {
		panic(err)
	}
	lr := res.Liveness
	fmt.Printf("%s: %d states, %d transitions\n", name, lr.States, lr.Transitions)
	for _, p := range lr.Properties {
		verdict := "holds"
		if !p.Holds {
			verdict = "FAIR CYCLE"
		}
		fmt.Printf("  %-14s %-10s %s\n", p.Name, verdict, p.Desc)
	}
	fmt.Println()
	return res
}

func main() {
	fmt.Println("progress properties of the collector model (weak fairness per")
	fmt.Println("process, per buffer, and per pending handshake):")
	fmt.Println()

	clean := check("clean model", config())
	if !clean.Holds() {
		panic("clean model should satisfy every progress property")
	}

	muted := config()
	muted.MuteHandshake = true
	res := check("mute-handshake (mutators never poll)", muted)
	if res.Holds() {
		panic("muted handshake should violate hs-ack")
	}

	nodeq := config()
	nodeq.NoDequeue = true
	check("no-dequeue (buffers never commit)", nodeq)

	// Show one counterexample in full: the first violated property of
	// the muted-handshake model, as a stem + forever-repeating cycle.
	v := res.Liveness.Violations()[0]
	fmt.Printf("counterexample for %s under mute-handshake:\n", v.Name)
	fmt.Print(v.Counterexample.Render(res.Model))
	fmt.Println()
	fmt.Println("the cycle is weakly fair: every process with a continuously enabled")
	fmt.Println("step takes one, every committable buffer commits, yet the handshake")
	fmt.Println("pending bit is set at every state of the cycle — a real protocol")
	fmt.Println("failure, not a scheduler artifact. gcmc -liveness runs the same")
	fmt.Println("check on any preset.")
}
