// Reduction: measure the model checker's state-space reductions on a
// configuration with two interchangeable mutators.
//
// The checker supports two orthogonal reductions (E17b):
//
//   - partial-order reduction (-reduce): at states where some process's
//     next step is a provably commuting buffer-local action, only that
//     single successor is pursued;
//   - mutator symmetry (-symmetry): states that differ only by a
//     standing-class-preserving permutation of the mutators fold to one
//     canonical visited-set entry.
//
// Both preserve the verdict — package diffcheck differentially validates
// that on every run of the test suite — while shrinking the visited
// state space. This example explores the same configuration four times
// and prints the shrink factors.
//
// Run:
//
//	go run ./examples/reduction
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	cfg := core.SymmetricConfig()
	cfg.DisableStore = true // handshake-only workload keeps this instant

	fmt.Println("configuration: two interchangeable mutators (identical roots),")
	fmt.Println("handshake-only workload, TSO buffers bounded at 1")
	fmt.Println()

	type mode struct {
		name             string
		reduce, symmetry bool
	}
	modes := []mode{
		{"full", false, false},
		{"reduce", true, false},
		{"symmetry", false, true},
		{"reduce+symmetry", true, true},
	}

	var fullStates int
	fmt.Printf("%-16s %8s %8s %7s %s\n", "mode", "states", "ample", "shrink", "verdict")
	for _, md := range modes {
		res, err := core.Verify(cfg, core.VerifyOptions{
			Trace:    true,
			Reduce:   md.reduce,
			Symmetry: md.symmetry,
		})
		if err != nil {
			panic(err)
		}
		verdict := "all invariants hold"
		if !res.Holds() {
			verdict = "VIOLATION (unexpected!)"
		}
		if md.name == "full" {
			fullStates = res.States
		}
		fmt.Printf("%-16s %8d %8d %6.2fx %s\n",
			md.name, res.States, res.AmpleStates,
			float64(fullStates)/float64(res.States), verdict)
	}

	fmt.Println()
	fmt.Println("every mode explores the same reachable behaviours: the reduced runs")
	fmt.Println("visit representatives of the skipped interleavings and mutator")
	fmt.Println("permutations. go test ./internal/diffcheck proves the verdicts match")
	fmt.Println("on litmus tests, random TSO programs, and a model corpus.")
}
