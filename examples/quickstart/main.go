// Quickstart: the executable collector kernel in five minutes.
//
// A mutator goroutine builds and mutates a linked list inside the arena
// while the collector runs full on-the-fly mark-sweep cycles — no
// stop-the-world pause ever happens; the mutator only ever cooperates at
// its own safe points.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	rt := core.NewRuntime(core.RuntimeOptions{
		Slots:    128, // arena capacity (objects)
		Fields:   1,   // reference fields per object
		Mutators: 1,
	})
	m := rt.Mutator(0)

	// Build a five-node list: n0 → n1 → … → n4. Alloc pushes each new
	// object onto the mutator's root set and returns its root index.
	head := m.Alloc()
	prev := head
	for i := 1; i < 5; i++ {
		n := m.Alloc()
		m.Store(prev, 0, n) // prev.f ← n, write barriers included
		prev = n
	}
	// Drop every temporary root except the head (highest index first,
	// because Discard swap-removes): only the list structure keeps the
	// tail nodes alive now.
	for i := m.NumRoots() - 1; i > head; i-- {
		m.Discard(i)
	}
	fmt.Printf("built a 5-node list; arena: %v\n", rt.Arena())

	// Sever the tail: nodes n3, n4 become garbage. The deletion barrier
	// inside Store keeps this safe even while the collector is tracing.
	n1 := m.Load(head, 0)
	n2 := m.Load(n1, 0)
	m.Store(n2, 0, -1) // n2.f ← NULL
	m.Discard(n2)      // drop the walk's temporary roots again
	m.Discard(n1)
	fmt.Printf("severed after n2; live before GC: %d\n", rt.Arena().LiveCount())

	// Collect concurrently. The mutator parks (a permanent safe point) so
	// this quickstart stays sequential; see examples in cmd/gcrt-demo for
	// fully concurrent operation.
	m.Park()
	freed := rt.Collect()
	freed += rt.Collect() // floating garbage is gone by the second cycle
	m.Unpark()

	fmt.Printf("collector freed %d objects; live now: %d\n", freed, rt.Arena().LiveCount())
	fmt.Printf("stats: %v\n", rt.Stats())

	// The retained prefix is intact: n0 → n1 → n2, then NULL.
	a := m.Load(head, 0)
	b := m.Load(a, 0)
	if a == -1 || b == -1 || m.Load(b, 0) != -1 {
		panic("list damaged")
	}
	fmt.Println("retained prefix n0 → n1 → n2 verified intact")
}
