// Ablation: why the collector needs both write barriers.
//
// This example removes the deletion (snapshot) barrier from the model and
// lets the model checker hunt for a safety violation. It finds the
// classic lost-object interleaving — a reachable object freed by the
// sweep — and prints the complete counterexample trace: every load,
// store, CAS, buffer commit and handshake along the way.
//
// It then does the same at runtime scale with the executable kernel,
// staging the identical scenario deterministically with two mutator
// goroutines.
//
// Run:
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	fmt.Println("=== Part 1: model checker finds the lost-object interleaving ===")
	cfg := core.TinyConfig()
	cfg.NoDeletionBarrier = true

	// Workers 0 = one checker goroutine per CPU; the layer-synchronous
	// search finds the same minimal-depth counterexample at any width.
	res, err := core.Verify(cfg, core.VerifyOptions{Trace: true, HeadlineOnly: true, Workers: 0})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if res.Holds() {
		fmt.Println("unexpectedly safe — the ablation should be refutable")
		os.Exit(1)
	}
	fmt.Printf("violation found after exploring %d states:\n\n", res.States)
	fmt.Print(res.RenderViolation())

	fmt.Println()
	fmt.Println("=== Part 2: the same bug bites the runtime kernel ===")
	rt := core.NewRuntime(core.RuntimeOptions{
		Slots: 16, Fields: 1, Mutators: 2, NoDeletionBarrier: true,
	})
	m1, m2 := rt.Mutator(0), rt.Mutator(1)

	h := m1.Alloc()
	x := m1.Alloc()
	m1.Store(h, 0, x)
	m1.Discard(x) // x now reachable only through h.f

	done := make(chan struct{})
	go func() { rt.Collect(); close(done) }()

	// Both mutators pass the initialization handshakes; m1 completes its
	// root scan while m2 lags, keeping the collector out of the mark
	// loop.
	for m1.Served() < 4 || m2.Served() < 4 {
		m1.SafePoint()
		m2.SafePoint()
	}
	m1.AwaitHandshakes(5)

	// Behind the wavefront: load x into m1's roots (reads carry no
	// barrier) and erase the heap edge. The ablated Store never shades x.
	xr := m1.Load(h, 0)
	m1.Store(h, 0, -1)

	m2.AwaitHandshakes(5) // now tracing starts: x is invisible
	m1.Park()
	m2.Park()
	<-done
	m1.Unpark()
	m2.Unpark()

	if rt.Arena().Allocated(m1.Root(xr)) {
		fmt.Println("x survived (unexpected)")
		os.Exit(1)
	}
	fmt.Println("x was freed while still reachable from m1's roots")
	m1.Load(xr, 0) // touching it faults
	fmt.Printf("dead-slot accesses recorded: %d\n", rt.Arena().Faults.Load())
	fmt.Println()
	fmt.Println("With the deletion barrier restored, the model checker verifies the")
	fmt.Println("same configuration exhaustively — see examples/modelcheck.")
}
